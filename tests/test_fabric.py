"""Fabric unit suite: journal durability, lease protocol, broker state
machine, worker loop, and the SweepRunner broker mode."""

import json
import os
import time

import pytest

from repro.errors import ConfigError, SweepExecutionError
from repro.experiments.runner import RunSpec, SweepRunner
from repro.fabric import faultpoints
from repro.fabric.broker import BrokerConfig, WorkBroker
from repro.fabric.journal import SpecJournal
from repro.fabric.lease import LeaseManager
from repro.fabric.worker import Worker
from repro.fsio import atomic_write_text, read_json_lines
from tests.test_results_cache import fake_result

BAD_SEED = 666


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.reset()
    yield
    faultpoints.reset()


def grid(count, bad_at=None):
    return [
        RunSpec(
            config="4D-2C",
            workload="pagerank",
            size="tiny",
            seed=BAD_SEED if index == bad_at else index,
        )
        for index in range(count)
    ]


def crashy_execute(spec):
    if spec.seed == BAD_SEED:
        raise RuntimeError("injected crash")
    return fake_result(spec)


def make_broker(tmp_path, **config):
    config.setdefault("lease_ttl_s", 0.3)
    config.setdefault("backoff_s", 0.01)
    config.setdefault("backoff_cap_s", 0.05)
    return WorkBroker(tmp_path / "broker", config=BrokerConfig(**config))


def make_worker(broker, execute=fake_result, **kwargs):
    kwargs.setdefault("poll_interval_s", 0.02)
    return Worker(broker, execute=execute, **kwargs)


# -- fsio ----------------------------------------------------------------------------


def test_atomic_write_crash_before_rename_preserves_old_content(tmp_path, monkeypatch):
    target = tmp_path / "state.json"
    atomic_write_text(target, "old")

    import repro.fsio as fsio

    def explode(src, dst):
        raise OSError("crash injected between temp write and rename")

    monkeypatch.setattr(fsio.os, "replace", explode)
    with pytest.raises(OSError):
        atomic_write_text(target, "new")
    monkeypatch.undo()
    assert target.read_text() == "old"
    assert list(tmp_path.glob("*.tmp")) == []  # temp file cleaned up


def test_read_json_lines_skips_torn_and_foreign_lines(tmp_path):
    path = tmp_path / "j.jsonl"
    path.write_text('{"a": 1}\nnot json\n[1, 2]\n{"b": 2}\n{"torn": ')
    assert list(read_json_lines(path)) == [{"a": 1}, {"b": 2}]


# -- journal -------------------------------------------------------------------------


def test_enqueue_is_exclusive_and_idempotent(tmp_path):
    journal = SpecJournal(tmp_path)
    assert journal.enqueue("k1", {"seed": 1}) is True
    assert journal.enqueue("k1", {"seed": 999}) is False  # no clobber
    record = journal.read("k1")
    assert record.state == "pending" and record.spec == {"seed": 1}
    assert len(journal) == 1


def test_transitions_fold_in_order(tmp_path):
    journal = SpecJournal(tmp_path)
    journal.enqueue("k1", {"seed": 1})
    journal.append("k1", "leased", attempts=1, worker="w1")
    record = journal.read("k1")
    assert (record.state, record.attempts, record.worker) == ("leased", 1, "w1")
    journal.append("k1", "done", worker="w1")
    assert journal.read("k1").state == "done"


def test_torn_trailing_line_is_ignored_and_healed(tmp_path):
    journal = SpecJournal(tmp_path)
    journal.enqueue("k1", {"seed": 1})
    journal.append("k1", "leased", attempts=1, worker="w1")
    # simulate a crash mid-append: half a "done" line reaches the disk
    with open(journal.path_for("k1"), "a") as handle:
        handle.write('{"key": "k1", "state": "don')
    assert journal.read("k1").state == "leased"  # transition never committed
    # the next append heals the tail instead of concatenating onto it
    journal.append("k1", "done", worker="w2")
    assert journal.read("k1").state == "done"


def test_unreadable_journal_is_skipped_not_fatal(tmp_path):
    journal = SpecJournal(tmp_path)
    journal.enqueue("k1", {"seed": 1})
    (tmp_path / "garbage.jsonl").write_text("{{{{")
    assert set(journal.replay()) == {"k1"}


# -- leases --------------------------------------------------------------------------


def test_claim_is_exclusive_until_released(tmp_path):
    leases = LeaseManager(tmp_path, ttl_s=30.0)
    assert leases.try_claim("k1", "w1") is True
    assert leases.try_claim("k1", "w2") is False
    assert leases.holder("k1")[0] == "w1"
    assert leases.release("k1", "w2") is False  # not the holder
    assert leases.release("k1", "w1") is True
    assert leases.try_claim("k1", "w2") is True


def test_expired_lease_is_stolen_exactly_once(tmp_path):
    leases = LeaseManager(tmp_path, ttl_s=0.05)
    assert leases.try_claim("k1", "w1")
    time.sleep(0.08)
    assert leases.expired("k1")
    assert leases.try_claim("k1", "w2") is True  # steal
    assert leases.try_claim("k1", "w3") is False  # fresh lease is live


def test_renew_extends_and_detects_loss(tmp_path):
    leases = LeaseManager(tmp_path, ttl_s=0.2)
    leases.try_claim("k1", "w1")
    _, first_expiry = leases.holder("k1")
    time.sleep(0.05)
    assert leases.renew("k1", "w1") is True
    assert leases.holder("k1")[1] > first_expiry
    # steal after expiry: the original worker's renew must report loss
    time.sleep(0.25)
    leases.try_claim("k1", "w2")
    assert leases.renew("k1", "w1") is False
    assert leases.holder("k1")[0] == "w2"  # and not overwrite the thief


def test_unparsable_lease_falls_back_to_mtime_ttl(tmp_path):
    leases = LeaseManager(tmp_path, ttl_s=0.05)
    leases.path_for("k1").write_text("torn {")
    worker, expires = leases.holder("k1")
    assert worker == "<unreadable>"
    time.sleep(0.08)
    assert leases.expired("k1")
    assert leases.try_claim("k1", "w2") is True


# -- broker --------------------------------------------------------------------------


def test_submit_dedups_against_cache_inflight_and_duplicates(tmp_path):
    broker = make_broker(tmp_path)
    specs = grid(3)
    broker.cache.put(specs[0].cache_key(), fake_result(specs[0]))
    report = broker.submit(specs + [specs[1]])  # one in-grid duplicate
    assert (report.total, report.enqueued, report.cached) == (3, 2, 1)
    # the cached spec is journaled straight to done
    assert broker.records()[specs[0].cache_key()].state == "done"
    again = broker.submit(specs)
    assert (again.enqueued, again.done, again.inflight) == (0, 1, 2)


def test_claim_execute_complete_lifecycle(tmp_path):
    broker = make_broker(tmp_path)
    spec = grid(1)[0]
    broker.submit([spec])
    record = broker.claim("w1")
    assert record.key == spec.cache_key()
    assert record.attempts == 1
    assert broker.records()[record.key].state == "leased"
    assert broker.claim("w2") is None  # nothing else runnable
    broker.cache.put(record.key, fake_result(spec), spec=record.spec)
    assert broker.complete(record.key, "w1") is True
    tally = broker.counts()
    assert tally["done"] == 1 and broker.drained()
    assert broker.leases.holder(record.key) is None  # lease released


def test_fail_retries_with_backoff_then_quarantines(tmp_path):
    broker = make_broker(tmp_path, retries=1)
    spec = grid(1, bad_at=0)[0]
    broker.submit([spec])
    key = spec.cache_key()

    record = broker.claim("w1")
    broker.fail(key, "w1", "RuntimeError: boom", "diag")
    folded = broker.records()[key]
    assert folded.state == "pending" and folded.not_before > time.time() - 0.01
    assert broker.claim("w1") is None  # parked on backoff
    time.sleep(0.06)
    record = broker.claim("w1")
    assert record.attempts == 2
    broker.fail(key, "w1", "RuntimeError: boom again")
    folded = broker.records()[key]
    assert folded.state == "dead"
    assert key in broker.dead_letters
    assert broker.dead_letters.known(key)["attempts"] == 2
    assert broker.drained()


def test_expired_lease_is_reclaimed_and_retried(tmp_path):
    broker = make_broker(tmp_path, lease_ttl_s=0.05, retries=3)
    spec = grid(1)[0]
    broker.submit([spec])
    key = spec.cache_key()
    assert broker.claim("doomed") is not None
    # "doomed" never heartbeats: after the TTL any claimer reclaims it
    time.sleep(0.08)
    assert broker.claim("janitor") is None  # first pass journals the reclaim
    folded = broker.records()[key]
    assert folded.state == "pending"
    assert "lease expired" in folded.error and "doomed" in folded.error
    time.sleep(0.03)
    record = broker.claim("janitor")  # after backoff it is runnable again
    assert record is not None and record.attempts == 2


def test_reclaim_exhausted_budget_lands_in_dead_letters(tmp_path):
    broker = make_broker(tmp_path, lease_ttl_s=0.03, retries=0, backoff_s=0.001)
    spec = grid(1)[0]
    broker.submit([spec])
    key = spec.cache_key()
    assert broker.claim("crasher") is not None  # attempt 1, then "dies"
    time.sleep(0.05)
    broker.claim("janitor")
    folded = broker.records()[key]
    assert folded.state == "dead"
    assert key in broker.dead_letters
    assert "lease expired" in str(broker.dead_letters.known(key)["error"])


def test_complete_is_idempotent_after_lease_loss(tmp_path):
    broker = make_broker(tmp_path, lease_ttl_s=0.05, retries=3)
    spec = grid(1)[0]
    broker.submit([spec])
    key = spec.cache_key()
    broker.claim("slow")
    time.sleep(0.08)  # slow worker's lease expires; spec reclaimed + redone
    broker.claim("janitor")
    time.sleep(0.03)
    assert broker.claim("fast") is not None
    broker.cache.put(key, fake_result(spec), spec=spec.to_json_dict())
    assert broker.complete(key, "fast")
    # the presumed-dead worker finishes late and publishes anyway: no-op
    broker.cache.put(key, fake_result(spec), spec=spec.to_json_dict())
    assert broker.complete(key, "slow")
    assert broker.counts()["done"] == 1
    assert broker.cache.get(key) == fake_result(spec)


def test_broker_config_persists_and_wins(tmp_path):
    make_broker(tmp_path, retries=7, lease_ttl_s=1.5)
    reopened = WorkBroker(tmp_path / "broker", config=BrokerConfig(retries=0))
    assert reopened.config.retries == 7
    assert reopened.config.lease_ttl_s == 1.5


def test_submit_retry_dead_revives_quarantined_spec(tmp_path):
    broker = make_broker(tmp_path, retries=0, backoff_s=0.001)
    spec = grid(1, bad_at=0)[0]
    broker.submit([spec])
    key = spec.cache_key()
    broker.claim("w1")
    broker.fail(key, "w1", "RuntimeError: boom")
    assert broker.records()[key].state == "dead"
    assert broker.submit([spec]).dead == 1  # skipped while quarantined
    report = broker.submit([spec], retry_dead=True)
    assert report.revived == 1
    record = broker.claim("w1")
    assert record is not None and record.attempts == 1  # fresh budget


# -- worker --------------------------------------------------------------------------


def test_worker_drains_queue_and_publishes(tmp_path):
    broker = make_broker(tmp_path)
    specs = grid(4)
    broker.submit(specs)
    worker = make_worker(broker)
    assert worker.run() == 4
    assert worker.completed == 4
    assert broker.drained()
    for spec in specs:
        assert broker.cache.get(spec.cache_key()) == fake_result(spec)


def test_worker_serves_already_cached_claim_without_executing(tmp_path):
    broker = make_broker(tmp_path)
    spec = grid(1)[0]
    broker.journal.enqueue(spec.cache_key(), spec.to_json_dict())
    broker.cache.put(spec.cache_key(), fake_result(spec))

    def forbidden(spec):
        raise AssertionError("must not re-execute a cached spec")

    worker = make_worker(broker, execute=forbidden)
    assert worker.run() == 1
    assert worker.cache_served == 1 and worker.completed == 0
    assert broker.records()[spec.cache_key()].state == "done"


def test_worker_heartbeat_keeps_slow_spec_leased(tmp_path):
    broker = make_broker(tmp_path, lease_ttl_s=0.15)
    spec = grid(1)[0]
    broker.submit([spec])

    def slow(spec):
        time.sleep(0.5)  # several TTLs long
        return fake_result(spec)

    worker = make_worker(broker, execute=slow, heartbeat_interval_s=0.04)
    assert worker.run() == 1
    assert worker.completed == 1 and worker.leases_lost == 0
    assert broker.counts()["done"] == 1  # never reclaimed mid-run


def test_two_workers_split_the_queue(tmp_path):
    broker = make_broker(tmp_path)
    specs = grid(6)
    broker.submit(specs)
    w1, w2 = make_worker(broker), make_worker(broker)
    import threading

    threads = [threading.Thread(target=w.run) for w in (w1, w2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert broker.drained()
    assert w1.completed + w2.completed == 6
    for spec in specs:
        assert broker.cache.get(spec.cache_key()) == fake_result(spec)


def test_worker_failure_path_quarantines_via_broker(tmp_path):
    broker = make_broker(tmp_path, retries=1, backoff_s=0.001)
    specs = grid(3, bad_at=1)
    broker.submit(specs)
    worker = make_worker(broker, execute=crashy_execute)
    worker.run()
    bad_key = specs[1].cache_key()
    assert broker.records()[bad_key].state == "dead"
    assert broker.dead_letters.known(bad_key)["attempts"] == 2
    assert broker.counts()["done"] == 2


# -- SweepRunner broker mode ---------------------------------------------------------


def test_runner_broker_mode_matches_plain_run(tmp_path):
    specs = grid(5)
    broker = make_broker(tmp_path)
    fabric = SweepRunner(broker=broker, execute=fake_result).run(specs)
    plain = SweepRunner(execute=fake_result, use_cache=False).run(specs)
    assert json.dumps([r.to_json_dict() for r in fabric], sort_keys=True) == (
        json.dumps([r.to_json_dict() for r in plain], sort_keys=True)
    )


def test_runner_broker_mode_adopts_broker_cache_and_quarantine(tmp_path):
    broker = make_broker(tmp_path, retries=0, backoff_s=0.001)
    runner = SweepRunner(broker=broker, execute=crashy_execute, strict=False)
    assert runner.cache is broker.cache
    assert runner.dead_letter_store is broker.dead_letters
    specs = grid(4, bad_at=2)
    results = runner.run(specs)
    assert results[2] is None
    assert all(results[i] is not None for i in (0, 1, 3))
    assert len(runner.dead_letters) == 1
    assert "injected crash" in runner.dead_letters[0].error
    # the quarantine is farm-wide: the broker's store has it too
    assert specs[2].cache_key() in broker.dead_letters


def test_runner_broker_mode_strict_raises_after_healthy_specs(tmp_path):
    broker = make_broker(tmp_path, retries=0, backoff_s=0.001)
    runner = SweepRunner(broker=broker, execute=crashy_execute)
    specs = grid(3, bad_at=0)
    with pytest.raises(SweepExecutionError):
        runner.run(specs)
    for spec in specs[1:]:
        assert broker.cache.get(spec.cache_key()) is not None


def test_runner_broker_mode_collects_results_executed_elsewhere(tmp_path):
    broker = make_broker(tmp_path)
    specs = grid(3)
    # a foreign worker (other host) finishes the whole grid first
    broker.submit(specs)
    make_worker(broker).run()

    def forbidden(spec):
        raise AssertionError("grid was already executed elsewhere")

    runner = SweepRunner(broker=broker, execute=forbidden)
    results = runner.run(specs)
    assert [r.time_ps for r in results] == [fake_result(s).time_ps for s in specs]
    assert runner.hits == 3  # all served from the shared cache


def test_runner_broker_mode_rejects_no_cache(tmp_path):
    with pytest.raises(ConfigError):
        SweepRunner(broker=make_broker(tmp_path), use_cache=False)


def test_runner_broker_mode_reruns_spec_with_corrupt_cache_entry(tmp_path):
    broker = make_broker(tmp_path)
    spec = grid(1)[0]
    key = spec.cache_key()
    broker.submit([spec])
    make_worker(broker).run()
    broker.cache.path_for(key).write_text("corrupt {")
    results = SweepRunner(broker=broker, execute=fake_result).run([spec])
    assert results[0] == fake_result(spec)
    assert broker.cache.get(key) == fake_result(spec)  # repaired on disk


# -- lease races and heartbeat lifecycle (robustness satellites) ---------------------


def test_concurrent_steal_race_has_exactly_one_winner(tmp_path):
    """N threads race to steal one expired lease; the rename/create
    protocol must admit exactly one thief, and the presumed-dead
    holder's next renew must report the loss."""
    import threading

    # a long TTL with the victim's lease backdated to already-expired:
    # a thief's fresh lease then cannot itself lapse mid-race (a tiny
    # real TTL would let scheduling jitter admit a second, legitimate
    # steal of the first winner)
    leases = LeaseManager(tmp_path, ttl_s=30.0)
    assert leases.try_claim("k1", "victim")
    assert leases.renew("k1", "victim", ttl_s=-1.0)  # dies retroactively
    assert leases.expired("k1")

    thieves = 8
    barrier = threading.Barrier(thieves)
    wins, errors = [], []

    def steal(name):
        barrier.wait()
        try:
            if leases.try_claim("k1", name):
                wins.append(name)
        except Exception as exc:  # a loser must back off, not blow up
            errors.append(exc)

    threads = [
        threading.Thread(target=steal, args=(f"thief-{index}",))
        for index in range(thieves)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10.0)
    assert errors == []
    assert len(wins) == 1, f"steal admitted {len(wins)} winners: {wins}"
    winner = wins[0]
    assert leases.holder("k1")[0] == winner
    # the loser's renew detects the loss instead of clobbering the winner
    assert leases.renew("k1", "victim") is False
    assert leases.holder("k1")[0] == winner


def test_repeated_steal_races_never_double_grant(tmp_path):
    """The race above, iterated: across rounds the winner count is
    always exactly one (exercises different interleavings)."""
    import threading

    leases = LeaseManager(tmp_path, ttl_s=30.0)
    for round_index in range(5):
        key = f"spec-{round_index}"
        assert leases.try_claim(key, "victim")
        assert leases.renew(key, "victim", ttl_s=-1.0)  # expire it now
        barrier = threading.Barrier(4)
        wins = []

        def steal(name, key=key, barrier=barrier, wins=wins):
            barrier.wait()
            if leases.try_claim(key, name):
                wins.append(name)

        threads = [
            threading.Thread(target=steal, args=(f"t{round_index}.{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(wins) == 1


def test_heartbeat_thread_is_joined_after_each_spec(tmp_path):
    """The beat daemon must not outlive its spec: after the worker
    finishes, no lease-heartbeat thread remains and the handle is
    cleared (a leaked beat would renew a lease nobody holds)."""
    import threading

    broker = make_broker(tmp_path, lease_ttl_s=0.15)
    broker.submit(grid(2))
    worker = make_worker(broker, heartbeat_interval_s=0.03)

    def slow(spec):
        time.sleep(0.1)
        return fake_result(spec)

    worker.execute = slow
    assert worker.run() == 2
    assert worker._heartbeat_thread is None
    beats = [
        t for t in threading.enumerate() if t.name.startswith("lease-heartbeat")
    ]
    assert beats == []


def test_persistent_renew_failure_surfaces_as_lease_loss(tmp_path):
    """A renew path that keeps raising (dead mount, ENOSPC, EACCES) is
    lease loss in progress: the beat thread exits *loudly* — counted in
    ``heartbeat_errors`` and ``leases_lost`` — and the spec still
    completes through the idempotent publish path."""
    broker = make_broker(tmp_path, lease_ttl_s=0.12)
    spec = grid(1)[0]
    broker.submit([spec])

    real_renew = broker.leases.renew

    def broken_renew(key, worker, ttl_s=None):
        raise OSError(28, "No space left on device")

    broker.leases.renew = broken_renew
    worker = make_worker(broker, heartbeat_interval_s=0.02)

    def slow(spec):
        time.sleep(0.3)  # enough beats to exhaust the error budget
        return fake_result(spec)

    worker.execute = slow
    try:
        assert worker.run() == 1
    finally:
        broker.leases.renew = real_renew
    assert worker.heartbeat_errors >= Worker.HEARTBEAT_ERROR_BUDGET
    assert worker.leases_lost == 1
    assert worker.completed == 1  # execution finished and published anyway
    assert broker.cache.get(spec.cache_key()) == fake_result(spec)


def test_transient_renew_hiccup_does_not_lose_the_lease(tmp_path):
    """One failed renew write inside the error budget heals on the next
    beat: no lease loss is declared."""
    broker = make_broker(tmp_path, lease_ttl_s=0.3)
    spec = grid(1)[0]
    broker.submit([spec])

    real_renew = broker.leases.renew
    calls = {"n": 0}

    def flaky_renew(key, worker, ttl_s=None):
        calls["n"] += 1
        if calls["n"] == 1:
            raise OSError("transient hiccup")
        return real_renew(key, worker, ttl_s=ttl_s)

    broker.leases.renew = flaky_renew
    worker = make_worker(broker, heartbeat_interval_s=0.03)

    def slow(spec):
        time.sleep(0.25)
        return fake_result(spec)

    worker.execute = slow
    try:
        assert worker.run() == 1
    finally:
        broker.leases.renew = real_renew
    assert calls["n"] >= 2  # the beat retried after the hiccup
    assert worker.heartbeat_errors == 1
    assert worker.leases_lost == 0


def test_relinquish_returns_claim_to_queue_uncharged(tmp_path):
    """Graceful drain: a relinquished claim goes straight back to
    ``pending`` with its attempt uncharged and no backoff stamp, so the
    next claimer picks it up immediately."""
    broker = make_broker(tmp_path, lease_ttl_s=30.0)
    spec = grid(1)[0]
    key = spec.cache_key()
    broker.submit([spec])
    record = broker.claim("drainee")
    assert record is not None and record.attempts == 1

    assert broker.relinquish(key, "drainee", reason="sigterm drain") is True
    record = broker.records()[key]
    assert record.state == "pending"
    assert record.attempts == 0  # uncharged: this was not a failure
    assert record.not_before == 0.0  # immediately claimable
    assert "sigterm drain" in record.error
    # no TTL wait: another worker claims right away despite the 30s TTL
    stolen = broker.claim("successor")
    assert stolen is not None and stolen.key == key


def test_relinquish_is_refused_for_non_holders_and_settled_specs(tmp_path):
    broker = make_broker(tmp_path, lease_ttl_s=30.0)
    spec = grid(1)[0]
    key = spec.cache_key()
    broker.submit([spec])
    assert broker.relinquish(key, "nobody") is False  # pending, unclaimed
    broker.claim("holder")
    assert broker.relinquish(key, "impostor") is False  # not the holder
    assert broker.records()[key].state == "leased"  # untouched
    broker.complete(key, "holder")
    assert broker.relinquish(key, "holder") is False  # already settled
    assert broker.records()[key].state == "done"


def test_worker_relinquish_current_hands_back_in_flight_claim(tmp_path):
    broker = make_broker(tmp_path, lease_ttl_s=30.0)
    spec = grid(1)[0]
    key = spec.cache_key()
    broker.submit([spec])
    worker = make_worker(broker)
    record = broker.claim(worker.worker_id)
    worker.current_key = record.key  # as _execute_claimed would set

    assert worker.relinquish_current(reason="drained by signal 15") is True
    assert worker.current_key is None
    assert broker.records()[key].state == "pending"
    assert worker.relinquish_current() is False  # idempotent: nothing left
