"""Tests for hierarchical/centralized synchronization (repro.core.sync)."""

import pytest

from repro.config import SystemConfig
from repro.core.sync import SYNC_MODES, SyncManager
from repro.errors import ConfigError, SimulationError
from repro.nmp.system import NMPSystem


def _manager(mode="hierarchical", config_name="8D-4C", mech="dimm_link"):
    system = NMPSystem(SystemConfig.named(config_name), idc=mech)
    manager = SyncManager(system.sim, system.config, system.idc, system.stats, mode)
    return system, manager


def test_invalid_mode_rejected():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    with pytest.raises(ConfigError):
        SyncManager(system.sim, system.config, system.idc, system.stats, "quantum")
    assert set(SYNC_MODES) == {"central", "hierarchical"}


def test_barrier_requires_participants():
    system, manager = _manager()
    with pytest.raises(ConfigError):
        manager.set_participants([])


def test_unknown_participant_rejected():
    system, manager = _manager()
    manager.set_participants([0, 0])
    with pytest.raises(SimulationError):
        manager.barrier(5)


@pytest.mark.parametrize("mode", SYNC_MODES)
def test_barrier_releases_only_when_all_arrive(mode):
    system, manager = _manager(mode)
    manager.set_participants([0, 1, 4])
    released = []
    for thread in range(3):
        manager.barrier(thread).add_callback(
            lambda ev, t=thread: released.append((t, system.sim.now))
        )
    system.sim.run()
    assert sorted(t for t, _ in released) == [0, 1, 2]
    assert system.stats.get("sync.barriers") == 1


@pytest.mark.parametrize("mode", SYNC_MODES)
def test_barrier_generations_are_independent(mode):
    system, manager = _manager(mode)
    manager.set_participants([0, 1])
    order = []

    def thread(thread_id):
        def proc():
            for generation in range(3):
                yield manager.barrier(thread_id)
                order.append((generation, thread_id))
        return proc()

    system.sim.process(thread(0))
    system.sim.process(thread(1))
    system.sim.run()
    assert [g for g, _t in order] == [0, 0, 1, 1, 2, 2]
    assert system.stats.get("sync.barriers") == 3


def test_hierarchical_sends_fewer_messages_than_central():
    counts = {}
    for mode in SYNC_MODES:
        system, manager = _manager(mode, "16D-8C")
        homes = [d for d in range(16) for _ in range(4)]
        manager.set_participants(homes)
        for thread in range(len(homes)):
            manager.barrier(thread)
        system.sim.run()
        counts[mode] = system.stats.get("sync.messages")
    assert counts["hierarchical"] < counts["central"]


def test_hierarchical_single_inter_group_round_trip():
    system, manager = _manager("hierarchical", "16D-8C")
    homes = [d for d in range(16) for _ in range(4)]
    manager.set_participants(homes)
    for thread in range(len(homes)):
        manager.barrier(thread)
    system.sim.run()
    # one arrival + one release crossing between the two groups
    assert system.stats.get("sync.inter_group_messages") == 2


def test_hierarchical_faster_than_central_on_mcn():
    times = {}
    for mode in SYNC_MODES:
        system, manager = _manager(mode, "16D-8C", mech="mcn")
        homes = [d for d in range(16) for _ in range(4)]
        manager.set_participants(homes)
        for thread in range(len(homes)):
            manager.barrier(thread)
        system.sim.run()
        times[mode] = system.sim.now
    assert times["hierarchical"] < times["central"]


def test_single_dimm_barrier_is_local_only():
    # all threads on the group-master DIMM of 4D-2C (DIMM 2): no messages
    system, manager = _manager("hierarchical", "4D-2C")
    manager.set_participants([2, 2, 2])
    for thread in range(3):
        manager.barrier(thread)
    system.sim.run()
    assert system.stats.get("sync.messages", 0) == 0
    assert system.sim.now < 1_000_000  # sub-microsecond, purely on-DIMM
