"""Tests for the DIMM-Link core package (bridge, routing plans, serdes,
controller, and the DIMMLinkIDC mechanism)."""

import pytest

from repro.config import SystemConfig
from repro.core.bridge import DLBridge
from repro.core.controller import DLController
from repro.core.routing import (
    INTER_GROUP_BC,
    INTER_GROUP_P2P,
    INTRA_GROUP_BC,
    INTRA_GROUP_P2P,
    distance,
    plan_broadcast,
    plan_p2p,
)
from repro.core.serdes import GRS, table2, tech
from repro.errors import ConfigError, RoutingError
from repro.nmp.system import NMPSystem
from repro.sim import Simulator, StatRegistry


# -- serdes (Table II) --------------------------------------------------------

def test_grs_matches_paper_numbers():
    assert GRS.signal_rate_gbps_per_pin == 25.0
    assert GRS.reach_mm == 80.0
    assert GRS.energy_pj_per_bit == 1.17


def test_pins_for_bandwidth_round_trip():
    pins = GRS.pins_for_bandwidth(25.0)
    assert GRS.link_bandwidth_gbps(pins) >= 25.0
    assert GRS.link_bandwidth_gbps(pins - 1) < 25.0


def test_table2_has_three_techs():
    assert set(table2()) == {"sma_cable", "ribbon_cable", "grs"}
    with pytest.raises(ConfigError):
        tech("optical")


# -- routing plans (Fig. 5) ----------------------------------------------------

def test_intra_group_p2p_plan():
    config = SystemConfig.named("16D-8C")
    plan = plan_p2p(config, 0, 2)
    assert plan.kind == INTRA_GROUP_P2P
    assert plan.dl_hops == 2
    assert not plan.forwarded


def test_inter_group_p2p_plan():
    config = SystemConfig.named("16D-8C")
    plan = plan_p2p(config, 0, 8)
    assert plan.kind == INTER_GROUP_P2P
    assert plan.forwarded
    assert plan.dl_hops == 0


def test_broadcast_plans():
    config = SystemConfig.named("16D-8C")
    plan = plan_broadcast(config, 0)
    assert plan.kind == INTER_GROUP_BC
    assert plan.gateways == [config.master_dimm(1)]
    single_group = SystemConfig.named("4D-2C")
    assert plan_broadcast(single_group, 0).kind == INTRA_GROUP_BC


def test_distance_function_properties():
    config = SystemConfig.named("16D-8C")
    assert distance(config, 3, 3) == 0.0
    assert distance(config, 0, 1) == 1.0
    assert distance(config, 0, 7) == 7.0
    assert distance(config, 0, 8) > distance(config, 0, 7)
    # symmetric
    assert distance(config, 2, 5) == distance(config, 5, 2)


# -- bridge ---------------------------------------------------------------------

def test_bridge_group_membership():
    sim, stats = Simulator(), StatRegistry()
    bridge = DLBridge(sim, SystemConfig.named("16D-8C"), stats)
    assert bridge.same_group(0, 7)
    assert not bridge.same_group(7, 8)
    assert bridge.locate(9) == (1, 1)
    assert bridge.hops(8, 11) == 3


def test_bridge_rejects_cross_group_hops():
    sim, stats = Simulator(), StatRegistry()
    bridge = DLBridge(sim, SystemConfig.named("16D-8C"), stats)
    with pytest.raises(RoutingError):
        bridge.hops(0, 8)


def test_bridge_send_delivers():
    sim, stats = Simulator(), StatRegistry()
    bridge = DLBridge(sim, SystemConfig.named("4D-2C"), stats)
    done = []
    bridge.send(0, 3, 160).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert stats.get("dl.hops") == 3


# -- controller ---------------------------------------------------------------

def test_controller_counts_packets_and_wire_bytes():
    stats = StatRegistry()
    controller = DLController(0, stats)
    wire = controller.packetize(600)  # 3 packets
    assert stats.get("dlc.tx_packets") == 3
    assert wire == stats.get("dlc.tx_wire_bytes")
    controller.receive(600)
    assert stats.get("dlc.rx_packets") == 3


# -- DIMMLinkIDC mechanism ------------------------------------------------------

def _system(name="4D-2C", **kwargs):
    return NMPSystem(SystemConfig.named(name), idc="dimm_link", **kwargs)


def test_intra_group_read_completes_and_counts():
    system = _system()
    done = []
    system.idc.remote_read(0, 2, 0, 256).add_callback(
        lambda ev: done.append(system.sim.now)
    )
    system.sim.run()
    assert len(done) == 1
    assert system.stats.get("idc.intra_group_bytes") == 256
    assert system.stats.get("idc.forwarded_bytes") == 0


def test_inter_group_read_is_forwarded():
    system = _system("8D-4C")
    done = []
    system.idc.remote_read(0, 5, 0, 256).add_callback(
        lambda ev: done.append(system.sim.now)
    )
    system.sim.run()
    assert len(done) == 1
    assert system.stats.get("idc.forwarded_bytes") == 256
    assert system.stats.get("fwd.ops") == 2  # request + response


def test_intra_group_latency_below_inter_group():
    intra = _system("8D-4C")
    intra.idc.remote_read(0, 1, 0, 64)
    intra_time = _finish(intra)
    inter = _system("8D-4C")
    inter.idc.remote_read(0, 4, 0, 64)
    inter_time = _finish(inter)
    assert intra_time < inter_time


def _finish(system):
    system.sim.run()
    return system.sim.now


def test_remote_write_reaches_destination_dram():
    system = _system()
    system.idc.remote_write(1, 3, 0, 512)
    system.sim.run()
    assert system.stats.get("dimm3.idc.remote_served_bytes") == 512
    assert system.stats.get("dimm3.dram.write_bytes") == 512


def test_broadcast_reaches_every_other_dimm():
    system = _system("8D-4C")
    done = []
    system.idc.broadcast(0, 0, 256).add_callback(lambda ev: done.append(True))
    system.sim.run()
    assert done == [True]
    for dimm in range(1, 8):
        assert system.stats.get(f"dimm{dimm}.dram.write_bytes") == 256
    assert system.stats.get("dimm0.dram.write_bytes") == 0


def test_message_intra_vs_inter_group_paths():
    system = _system("8D-4C")
    system.idc.message(0, 3, 8)
    system.sim.run()
    assert system.stats.get("fwd.ops") == 0
    system.idc.message(0, 4, 8)
    system.sim.run()
    assert system.stats.get("fwd.ops") == 1


def test_expected_message_skips_polling():
    slow = _system("8D-4C")
    slow.idc.message(0, 4, 8, expected=False)
    t_normal = _finish(slow)
    fast = _system("8D-4C")
    fast.idc.message(0, 4, 8, expected=True)
    t_expected = _finish(fast)
    assert t_expected < t_normal


def test_bulk_transfer_uses_stream_path():
    system = _system()
    system.idc.remote_read(0, 1, 0, 64 * 1024)
    system.sim.run()
    # streamed in one shot: link busy equals wire bytes at 25 B/ns
    assert system.stats.get("dl.packets") >= 2
    assert system.stats.get("idc.intra_group_bytes") == 64 * 1024
