"""The ``repro.perf`` harness: report schema, floors, and CLI plumbing.

The harness itself is a deliverable — CI's perf-smoke job and the
committed ``BENCH_hotpath.json`` both depend on its JSON contract, so
the schema and the ``--check`` floor logic get the same regression
treatment as simulator code.  Tests run tiny bench subsets in quick
mode; wall-clock stays in CI-smoke territory.
"""

import json

import pytest

from repro.perf.__main__ import (
    CHECK_FLOORS,
    SCHEMA,
    build_report,
    check_floors,
    main,
)
from repro.perf.benches import BENCHES, run_benches
from repro.perf.calibrate import ROUND_OPS, calibrate


def test_calibration_reports_positive_throughput():
    calibration = calibrate(min_seconds=0.01)
    assert calibration["ops_per_sec"] > 0
    assert calibration["wall_s"] > 0
    assert calibration["rounds"] >= 1
    # the round size is part of the normalization contract: changing it
    # silently rescales every historical normalized figure
    assert ROUND_OPS == 50_000


def test_bench_registry_names():
    assert set(CHECK_FLOORS) <= set(BENCHES)
    assert {"frfcfs", "route_lookup", "engine_churn"} <= set(BENCHES)


@pytest.mark.parametrize("name", ["engine_churn", "route_lookup"])
def test_individual_bench_shape(name):
    (result,) = run_benches(quick=True, only=[name])
    assert result["name"] == name
    assert result["ops"] > 0
    assert result["wall_s"] > 0
    assert result["ops_per_sec"] == pytest.approx(
        result["ops"] / result["wall_s"]
    )


def test_report_schema_and_normalization():
    report = build_report(quick=True, only=["route_lookup"])
    assert report["schema"] == SCHEMA
    assert report["quick"] is True
    (bench,) = report["benches"]
    expected = bench["ops_per_sec"] / report["calibration"]["ops_per_sec"]
    assert bench["normalized"] == pytest.approx(expected)
    assert report["speedups"] == {"route_lookup": bench["speedup"]}
    json.dumps(report)  # every value JSON-serializable


def test_check_floors_pass_fail_and_missing():
    passing = {"speedups": {name: floor + 1.0 for name, floor in CHECK_FLOORS.items()}}
    assert check_floors(passing) == []

    failing = {"speedups": {name: 0.5 for name in CHECK_FLOORS}}
    messages = check_floors(failing)
    assert len(messages) == len(CHECK_FLOORS)
    assert all("below floor" in message for message in messages)

    missing = {"speedups": {}}
    messages = check_floors(missing)
    assert all("not run" in message for message in messages)


def test_cli_writes_report_and_returns_zero(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = main(["--quick", "--bench", "route_lookup", "--out", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == SCHEMA
    assert report["benches"][0]["name"] == "route_lookup"
    stdout = capsys.readouterr().out
    assert "route_lookup" in stdout and str(out) in stdout


def test_cli_check_passes_on_route_lookup_floor(tmp_path):
    """route_lookup's quick-mode speedup comfortably clears its floor; a
    frfcfs floor failure is reported, not raised."""
    out = tmp_path / "bench.json"
    code = main(["--quick", "--bench", "route_lookup", "--check", "--out", str(out)])
    # frfcfs wasn't run, so --check must fail with a clear message...
    assert code == 1

    # ...while the measured route_lookup speedup itself clears its floor
    report = json.loads(out.read_text())
    assert report["speedups"]["route_lookup"] >= CHECK_FLOORS["route_lookup"]
