"""Route-table/cache invalidation coverage.

The topology memoizes paths, broadcast trees, and distance tables; every
link-state change must invalidate all of them.  These tests compare the
cached answers against a *cold* topology — a freshly constructed one
with the same links down, which cannot have stale state — through full
down/up cycles, including watchdog-driven mid-run rerouting and
restoration after an outage window.
"""

import pytest

from repro.errors import LinkFailure
from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import Topology
from repro.sim import Simulator, StatRegistry


def cold_topology(name, n, down_edges):
    """A fresh topology with ``down_edges`` down: no cache can be stale."""
    topo = Topology(name, n)
    for a, b in down_edges:
        topo.set_link_state(a, b, False)
    return topo


def assert_matches_cold(topo, down_edges):
    """Every pair's path/hops/tree must equal the cold computation."""
    cold = cold_topology(topo.name, topo.n, down_edges)
    for a in range(topo.n):
        for b in range(topo.n):
            if a == b:
                continue
            assert topo.reachable(a, b) == cold.reachable(a, b), (a, b)
            if topo.reachable(a, b):
                assert topo.path(a, b) == cold.path(a, b), (a, b)
                assert topo.hops(a, b) == cold.hops(a, b), (a, b)
        assert topo.broadcast_tree(a, require_all=False) == cold.broadcast_tree(
            a, require_all=False
        )


@pytest.mark.parametrize("name,n", [("mesh", 16), ("ring", 8), ("half_ring", 6)])
def test_cached_routes_match_cold_through_downs_and_ups(name, n):
    topo = Topology(name, n)
    # warm every cache
    assert_matches_cold(topo, [])
    transitions = [
        (topo.edges[0], False),
        (topo.edges[len(topo.edges) // 2], False),
        (topo.edges[0], True),
        (topo.edges[-1], False),
        (topo.edges[len(topo.edges) // 2], True),
        (topo.edges[-1], True),
    ]
    down = set()
    for (a, b), up in transitions:
        topo.set_link_state(a, b, up)
        down.discard((a, b)) if up else down.add((a, b))
        assert_matches_cold(topo, sorted(down))
    # fully restored: identical to a brand-new topology again
    assert down == set()
    assert_matches_cold(topo, [])


def test_returned_path_and_tree_are_private_copies():
    topo = Topology("mesh", 16)
    path = topo.path(0, 15)
    expected = list(path)
    path.append(999)
    path[0] = -7
    assert topo.path(0, 15) == expected

    tree = topo.broadcast_tree(0)
    expected_tree = list(tree)
    tree.clear()
    assert topo.broadcast_tree(0) == expected_tree


def test_hops_uses_distance_table_and_errors_on_partition():
    topo = Topology("half_ring", 4)  # chain 0-1-2-3
    assert topo.hops(0, 3) == 3
    topo.set_link_state(1, 2, False)
    assert topo.hops(0, 1) == 1
    from repro.errors import RoutingError

    with pytest.raises(RoutingError):
        topo.hops(0, 3)
    topo.set_link_state(1, 2, True)
    assert topo.hops(0, 3) == 3


def _network(sim, topo):
    return PacketNetwork(
        sim,
        topo,
        bandwidth_gbps=25.0,
        hop_latency_ps=10_000,
        wire_latency_ps=5_000,
        stats=StatRegistry(),
        name="t",
        watchdog_threshold=2,
        retry_penalty_ps=1_000,
        max_retries=4,
    )


def test_watchdog_link_down_mid_run_reroutes_like_cold():
    """A mid-run LinkDown: once the watchdog flips the routing tables,
    cached routes must equal a cold topology with that link down."""
    sim = Simulator()
    topo = Topology("ring", 6)
    net = _network(sim, topo)
    log = {"failures": 0, "delivered": 0}

    def driver():
        # warm the route caches while everything is up
        yield net.stream(0, 3, 4096)
        assert topo.path(0, 3) == [0, 1, 2, 3]
        net.fail_link(1, 2)  # physical failure only: routes still stale
        # senders hammer the dead link until the watchdog marks it down
        for _ in range(4):
            try:
                yield net.send(1, 2, 256)
                log["delivered"] += 1
            except LinkFailure:
                log["failures"] += 1
        assert topo.link_up(1, 2) is False

    sim.process(driver(), name="driver")
    sim.run()
    assert log["failures"] + log["delivered"] >= 1
    assert topo.route_recomputes == 1
    assert_matches_cold(topo, [(1, 2)])
    # traffic now takes the long way around, matching the cold route
    assert topo.path(1, 2) == [1, 0, 5, 4, 3, 2]


def test_outage_restoration_mid_run_restores_cold_routes():
    """Down-then-restore (LinkOutage shape): after restoration every
    cached route must match a brand-new topology again."""
    sim = Simulator()
    topo = Topology("ring", 6)
    net = _network(sim, topo)
    pristine = [topo.path(a, b) for a in range(6) for b in range(6) if a != b]

    def driver():
        net.fail_link(2, 3)
        for _ in range(3):  # accumulate watchdog timeouts -> mark down
            try:
                yield net.send(2, 3, 128)
            except LinkFailure:
                pass
        assert not topo.link_up(2, 3)
        assert_matches_cold(topo, [(2, 3)])
        yield 50_000  # outage window passes
        net.restore_link(2, 3)
        assert topo.link_up(2, 3)
        # restored: bit-identical to the never-failed route set
        current = [topo.path(a, b) for a in range(6) for b in range(6) if a != b]
        assert current == pristine
        yield net.send(2, 3, 128)  # and the direct link carries traffic again

    sim.process(driver(), name="driver")
    sim.run()
    assert topo.route_recomputes == 2
    assert_matches_cold(topo, [])


def test_stream_reroutes_after_watchdog_flip():
    """stream() resolves its path per attempt: a path cached before the
    failure must not leak into the post-flip attempt."""
    sim = Simulator()
    topo = Topology("ring", 6)
    net = _network(sim, topo)
    outcome = {}

    def driver():
        yield net.stream(0, 2, 2048)  # warms path(0,2) = [0, 1, 2]
        net.fail_link(0, 1)
        for _ in range(3):
            try:
                yield net.send(0, 1, 64)
            except LinkFailure:
                pass
        assert not topo.link_up(0, 1)
        yield net.stream(0, 2, 2048)  # must take [0, 5, 4, 3, 2]
        outcome["path"] = topo.path(0, 2)

    sim.process(driver(), name="driver")
    sim.run()
    assert outcome["path"] == [0, 5, 4, 3, 2]
    assert_matches_cold(topo, [(0, 1)])
