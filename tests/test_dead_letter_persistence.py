"""Persisted dead-letter list: reruns skip known-bad specs.

A sweep that quarantines a spec writes it to ``dead_letters.json`` in
the cache directory; a rerun skips that spec without re-attempting it
(no retry burn, no timeout burn) unless ``retry_dead_letter`` asks for
another try, in which case a success removes the record.
"""

import json

import pytest

from repro.errors import SweepExecutionError
from repro.experiments.deadletter import DeadLetterStore
from repro.experiments.runner import RunSpec, SweepRunner, configure, get_runner, set_runner
from tests.test_runner_supervision import BAD_SEED, crashy_execute, grid, ok_execute

ATTEMPT_LOG = []


def counting_crashy_execute(spec):
    ATTEMPT_LOG.append(spec.seed)
    return crashy_execute(spec)


def _runner(tmp_path, execute, **kwargs):
    return SweepRunner(
        cache=str(tmp_path / "cache"),
        execute=execute,
        retries=0,
        strict=False,
        dead_letter_store=str(tmp_path / "cache"),
        **kwargs,
    )


def test_quarantine_is_persisted_to_disk(tmp_path):
    runner = _runner(tmp_path, crashy_execute)
    specs = grid(3, bad_at=1)
    results = runner.run(specs)
    assert results[1] is None and results[0] is not None

    store_path = tmp_path / "cache" / "dead_letters.json"
    assert store_path.exists()
    payload = json.loads(store_path.read_text())
    assert len(payload["records"]) == 1
    (record,) = payload["records"].values()
    assert record["spec"]["seed"] == BAD_SEED
    assert "injected crash" in record["error"]


def test_rerun_skips_known_bad_specs(tmp_path):
    _runner(tmp_path, crashy_execute).run(grid(3, bad_at=1))

    ATTEMPT_LOG.clear()
    rerun = _runner(tmp_path, counting_crashy_execute)
    results = rerun.run(grid(3, bad_at=1))
    assert BAD_SEED not in ATTEMPT_LOG  # never re-attempted
    assert results[1] is None
    assert rerun.skipped_dead == 1
    (letter,) = rerun.dead_letters
    assert letter.error.startswith("skipped: persisted dead-letter")
    assert "retry-dead-letter" in letter.error


def test_skip_raises_in_strict_mode(tmp_path):
    _runner(tmp_path, crashy_execute).run(grid(3, bad_at=1))
    strict = SweepRunner(
        cache=str(tmp_path / "cache"),
        execute=crashy_execute,
        retries=0,
        strict=True,
        dead_letter_store=str(tmp_path / "cache"),
    )
    with pytest.raises(SweepExecutionError):
        strict.run(grid(3, bad_at=1))


def test_retry_dead_letter_reattempts_and_clears_on_success(tmp_path):
    _runner(tmp_path, crashy_execute).run(grid(3, bad_at=1))
    store = DeadLetterStore(tmp_path / "cache")
    assert len(store) == 1

    # the flaw is "fixed" (ok_execute): the retry succeeds and the
    # record disappears from disk
    retry = _runner(tmp_path, ok_execute, retry_dead_letter=True)
    results = retry.run(grid(3, bad_at=1))
    assert all(result is not None for result in results)
    assert retry.dead_letters == []
    assert len(DeadLetterStore(tmp_path / "cache")) == 0


def test_retry_dead_letter_keeps_record_on_repeat_failure(tmp_path):
    _runner(tmp_path, crashy_execute).run(grid(3, bad_at=1))
    retry = _runner(tmp_path, crashy_execute, retry_dead_letter=True)
    results = retry.run(grid(3, bad_at=1))
    assert results[1] is None
    assert len(DeadLetterStore(tmp_path / "cache")) == 1


def test_corrupt_store_treated_as_empty(tmp_path):
    directory = tmp_path / "cache"
    directory.mkdir()
    (directory / "dead_letters.json").write_text("{ not json")
    store = DeadLetterStore(directory)
    assert len(store) == 0
    store.record("k1", {"seed": 1}, attempts=2, error="boom")
    assert DeadLetterStore(directory).known("k1")["attempts"] == 2


def test_configure_wires_store_into_default_runner(tmp_path):
    previous = get_runner()
    try:
        runner = configure(cache_dir=str(tmp_path / "cache"))
        assert runner.dead_letter_store is not None
        assert runner.dead_letter_store.directory == runner.cache.cache_dir
        assert not runner.retry_dead_letter
        retry = configure(cache_dir=str(tmp_path / "cache"), retry_dead_letter=True)
        assert retry.retry_dead_letter
    finally:
        set_runner(previous)


# -- crash safety of the store file (satellite regression) ---------------------------


def test_crash_between_temp_write_and_rename_keeps_old_store(tmp_path, monkeypatch):
    """A writer dying after opening the temp file but before the rename
    must leave the previous store readable — never truncated or lost."""
    store = DeadLetterStore(tmp_path)
    store.record("k1", {"seed": 1}, 2, "first failure")

    import repro.fsio as fsio

    def explode(src, dst):
        raise OSError("crash injected between temp write and rename")

    monkeypatch.setattr(fsio.os, "replace", explode)
    with pytest.raises(OSError):
        store.record("k2", {"seed": 2}, 1, "second failure")
    monkeypatch.undo()

    reloaded = DeadLetterStore(tmp_path)
    assert reloaded.keys() == ["k1"]
    assert reloaded.known("k1")["error"] == "first failure"
    # the aborted write left no temp-file litter next to the store
    assert [p.name for p in tmp_path.iterdir()] == ["dead_letters.json"]


def test_refresh_merges_other_processes_quarantines(tmp_path):
    """Two stores on the same directory (two workers) must merge their
    different-key writes instead of clobbering each other."""
    ours = DeadLetterStore(tmp_path)
    theirs = DeadLetterStore(tmp_path)
    ours.record("k1", {"seed": 1}, 1, "ours")
    theirs.record("k2", {"seed": 2}, 1, "theirs")  # refreshes before writing
    assert theirs.keys() == ["k1", "k2"]
    ours.refresh()
    assert ours.keys() == ["k1", "k2"]
    # and a discard sees the latest state too
    assert ours.discard("k2") is True
    theirs.refresh()
    assert theirs.keys() == ["k1"]
