"""Tests for the event-level packet network (repro.interconnect.network)."""

import pytest

from repro.errors import RoutingError
from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import Topology
from repro.sim import Simulator, StatRegistry
from repro.sim.time import ns


def _network(name="half_ring", n=4, gbps=25.0, hop=ns(10), wire=ns(2)):
    sim = Simulator()
    stats = StatRegistry()
    network = PacketNetwork(
        sim, Topology(name, n), bandwidth_gbps=gbps,
        hop_latency_ps=hop, wire_latency_ps=wire, stats=stats,
    )
    return sim, stats, network


def test_send_latency_scales_with_hops():
    sim, _, network = _network()
    times = {}
    for dst in (1, 3):
        done = []
        network.send(0, dst, 160).add_callback(lambda ev, d=dst: done.append(sim.now))
        sim.run()
        times[dst] = done[0]
    # 3 hops strictly slower than 1 hop
    assert times[3] > times[1]


def test_send_single_hop_time_breakdown():
    sim, _, network = _network()
    done = []
    network.send(0, 1, 250).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    # occupancy 10ns (250B at 25 B/ns) + hop 10ns + wire latency 2ns
    assert done[0] == ns(10) + ns(10) + ns(2)


def test_send_to_self_completes_immediately():
    sim, _, network = _network()
    done = []
    network.send(2, 2, 64).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done == [0]


def test_concurrent_sends_on_disjoint_links_overlap():
    sim, _, network = _network(n=4)
    done = []
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(("a", sim.now)))
    network.send(2, 3, 2500).add_callback(lambda ev: done.append(("b", sim.now)))
    sim.run()
    assert done[0][1] == done[1][1]  # fully parallel


def test_sends_on_same_link_serialise():
    sim, _, network = _network(n=2)
    done = []
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(sim.now))
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done[1] - done[0] == ns(100)  # second waits for link occupancy


def test_opposite_directions_are_full_duplex():
    sim, _, network = _network(n=2)
    done = []
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(sim.now))
    network.send(1, 0, 2500).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done[0] == done[1]


def test_broadcast_reaches_all_and_fires_once():
    sim, stats, network = _network(n=4)
    done = []
    network.broadcast(0, 160).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert stats.get("dl.hops") == 3  # chain flood: 3 tree edges
    assert stats.get("dl.broadcasts") == 1


def test_broadcast_from_middle_is_faster_than_from_end():
    times = {}
    for root in (0, 1):
        sim, _, network = _network(n=4)
        done = []
        network.broadcast(root, 1600).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        times[root] = done[0]
    assert times[1] < times[0]


def test_stream_occupies_all_path_links_concurrently():
    sim, _, network = _network(n=4)
    done = []
    network.stream(0, 3, 25000).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    # pipelined: ~1000ns of occupancy (not 3x), plus 3 hops + wire latency
    assert done[0] < ns(1100) + 3 * ns(10) + ns(10)
    for edge in [(0, 1), (1, 2), (2, 3)]:
        assert network.link(*edge).busy_ps == ns(1000)


def test_missing_link_rejected():
    _, _, network = _network(n=4)
    with pytest.raises(RoutingError):
        network.link(0, 2)


def test_hop_bytes_accounting():
    sim, stats, network = _network(n=4)
    network.send(0, 3, 100)
    sim.run()
    assert stats.get("dl.hop_bytes") == 300  # 100 bytes x 3 hops
    assert network.total_busy_ps() == 3 * ns(4)
