"""Tests for the event-level packet network (repro.interconnect.network)."""

import pytest

from repro.errors import LinkFailure, RoutingError
from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import Topology
from repro.sim import Simulator, StatRegistry
from repro.sim.time import ns


def _network(name="half_ring", n=4, gbps=25.0, hop=ns(10), wire=ns(2)):
    sim = Simulator()
    stats = StatRegistry()
    network = PacketNetwork(
        sim, Topology(name, n), bandwidth_gbps=gbps,
        hop_latency_ps=hop, wire_latency_ps=wire, stats=stats,
    )
    return sim, stats, network


def test_send_latency_scales_with_hops():
    sim, _, network = _network()
    times = {}
    for dst in (1, 3):
        done = []
        network.send(0, dst, 160).add_callback(lambda ev, d=dst: done.append(sim.now))
        sim.run()
        times[dst] = done[0]
    # 3 hops strictly slower than 1 hop
    assert times[3] > times[1]


def test_send_single_hop_time_breakdown():
    sim, _, network = _network()
    done = []
    network.send(0, 1, 250).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    # occupancy 10ns (250B at 25 B/ns) + hop 10ns + wire latency 2ns
    assert done[0] == ns(10) + ns(10) + ns(2)


def test_send_to_self_completes_immediately():
    sim, _, network = _network()
    done = []
    network.send(2, 2, 64).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done == [0]


def test_concurrent_sends_on_disjoint_links_overlap():
    sim, _, network = _network(n=4)
    done = []
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(("a", sim.now)))
    network.send(2, 3, 2500).add_callback(lambda ev: done.append(("b", sim.now)))
    sim.run()
    assert done[0][1] == done[1][1]  # fully parallel


def test_sends_on_same_link_serialise():
    sim, _, network = _network(n=2)
    done = []
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(sim.now))
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done[1] - done[0] == ns(100)  # second waits for link occupancy


def test_opposite_directions_are_full_duplex():
    sim, _, network = _network(n=2)
    done = []
    network.send(0, 1, 2500).add_callback(lambda ev: done.append(sim.now))
    network.send(1, 0, 2500).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done[0] == done[1]


def test_broadcast_reaches_all_and_fires_once():
    sim, stats, network = _network(n=4)
    done = []
    network.broadcast(0, 160).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert stats.get("dl.hops") == 3  # chain flood: 3 tree edges
    assert stats.get("dl.broadcasts") == 1


def test_broadcast_from_middle_is_faster_than_from_end():
    times = {}
    for root in (0, 1):
        sim, _, network = _network(n=4)
        done = []
        network.broadcast(root, 1600).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        times[root] = done[0]
    assert times[1] < times[0]


def test_stream_occupies_all_path_links_concurrently():
    sim, _, network = _network(n=4)
    done = []
    network.stream(0, 3, 25000).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    # pipelined: ~1000ns of occupancy (not 3x), plus 3 hops + wire latency
    assert done[0] < ns(1100) + 3 * ns(10) + ns(10)
    for edge in [(0, 1), (1, 2), (2, 3)]:
        assert network.link(*edge).busy_ps == ns(1000)


def test_missing_link_rejected():
    _, _, network = _network(n=4)
    with pytest.raises(RoutingError):
        network.link(0, 2)


def test_hop_bytes_accounting():
    sim, stats, network = _network(n=4)
    network.send(0, 3, 100)
    sim.run()
    assert stats.get("dl.hop_bytes") == 300  # 100 bytes x 3 hops
    assert network.total_busy_ps() == 3 * ns(4)


# -- degraded operation ------------------------------------------------------------


def test_dead_link_detected_by_watchdog_then_rerouted():
    sim, stats, network = _network(name="ring", n=4)
    network.fail_link(0, 1)
    delivered = []

    def sender():
        for _ in range(5):
            try:
                yield network.send(0, 1, 64)
                delivered.append(sim.now)
            except LinkFailure:
                pass

    sim.run_process(sender())
    # the watchdog needed consecutive ACK silences to declare the link
    # dead, then routing swung the long way around the ring
    assert stats.get("dl.ack_timeouts") > 0
    assert stats.get("dl.links_marked_down") == 1
    assert network.topology.hops(0, 1) == 3
    assert delivered  # later packets still arrive (over the live route)


def test_partitioned_chain_fails_the_send_event():
    sim, stats, network = _network(name="half_ring", n=4)
    network.fail_link(1, 2)
    outcomes = []

    def sender():
        for _ in range(6):
            try:
                yield network.send(0, 3, 64)
                outcomes.append("ok")
            except LinkFailure:
                outcomes.append("failed")

    sim.run_process(sender())
    # a chain has no alternative route: every send eventually fails, the
    # early ones by retry exhaustion, later ones instantly (marked down)
    assert set(outcomes) == {"failed"}
    assert stats.get("dl.send_failures") == 6
    assert stats.get("dl.unroutable") > 0


def test_restore_link_heals_routing_and_watchdog():
    sim, stats, network = _network(name="half_ring", n=4)
    network.fail_link(1, 2)

    def scenario():
        try:
            yield network.send(0, 3, 64)
        except LinkFailure:
            pass
        network.restore_link(1, 2)
        yield network.send(0, 3, 64)
        return sim.now

    assert sim.run_process(scenario()) > 0
    assert stats.get("dl.links_restored") == 1
    assert network.topology.reachable(0, 3)
    assert stats.get("dl.packets") == 1


def test_degrade_link_reduces_bandwidth_and_is_restorable():
    sim, stats, network = _network()
    nominal = network.link(0, 1).bytes_per_ns
    network.degrade_link(0, 1, 0.5)
    assert network.link(0, 1).bytes_per_ns == nominal * 0.5
    assert network.link(1, 0).bytes_per_ns == nominal * 0.5
    network.degrade_link(0, 1, 1.0)
    assert network.link(0, 1).bytes_per_ns == nominal
    assert stats.get("dl.link_degradations") == 2


def test_degrade_fraction_validated():
    _sim, _stats, network = _network()
    with pytest.raises(LinkFailure):
        network.degrade_link(0, 1, 0.0)
    with pytest.raises(LinkFailure):
        network.degrade_link(0, 1, 2.0)


def test_availability_accounts_open_and_closed_outages():
    sim, _stats, network = _network()
    sim._now = ns(100)  # advance the clock directly (no queued events)
    network.fail_link(0, 1)
    sim._now = ns(300)
    network.restore_link(0, 1)
    network.fail_link(2, 3)
    sim._now = ns(400)
    availability = network.availability()
    assert availability[(0, 1)] == pytest.approx(0.5)  # 200 of 400 down
    assert availability[(2, 3)] == pytest.approx(0.75)  # open outage counted
    assert availability[(1, 2)] == 1.0
    assert network.finalize_stats() == pytest.approx(0.5)


def test_stream_retries_over_restored_route():
    sim, stats, network = _network(name="ring", n=4)
    network.fail_link(0, 1)
    results = []

    def sender():
        try:
            value = yield network.stream(0, 1, 8192)
            results.append(value)
        except LinkFailure:
            results.append("failed")

    sim.run_process(sender())
    # the stream's retry loop reports timeouts until the watchdog flips
    # the link, then the recomputed path delivers the train
    assert results == [8192]
    assert stats.get("dl.links_marked_down") == 1


def test_broadcast_fails_over_partition():
    sim, stats, network = _network(name="half_ring", n=4)
    network.fail_link(1, 2)
    # mark it down in routing too (watchdog verdict), so the flood tree
    # is computed over the partitioned graph
    network.watchdog.report_timeout((1, 2))
    network.watchdog.report_timeout((1, 2))
    network.watchdog.report_timeout((1, 2))
    outcome = []

    def sender():
        try:
            yield network.broadcast(0, 256)
            outcome.append("ok")
        except LinkFailure:
            outcome.append("failed")

    sim.run_process(sender())
    assert outcome == ["failed"]


def test_backoff_matches_unbounded_formula_and_stays_capped():
    _sim, _stats, network = _network()
    penalty = network.retry_penalty_ps
    cap = network.max_backoff_ps
    # the clamped-shift implementation must equal the original
    # min(penalty * 2**(attempt-1), cap) for every attempt, including
    # counts large enough that 2**(attempt-1) would be a huge int
    for attempt in list(range(1, 20)) + [64, 1_000, 100_000]:
        expected = min(penalty * 2 ** min(attempt - 1, 64), cap)
        assert network._backoff_ps(attempt) == expected
    # saturation: attempts past the cap all back off by exactly the cap
    assert network._backoff_ps(10) == cap
    assert network._backoff_ps(100_000) == cap
    # the first attempt is the bare penalty
    assert network._backoff_ps(1) == penalty
