"""Tests for the FR-FCFS queued memory controller."""

import pytest

from repro.dram import DDR4_2400_LRDIMM, DRAMModule, FRFCFSController
from repro.errors import SimulationError
from repro.sim import Simulator, StatRegistry


def _setup(ranks=1, window=16):
    sim = Simulator()
    module = DRAMModule(sim, DDR4_2400_LRDIMM, ranks, StatRegistry())
    return sim, module, FRFCFSController(sim, module, reorder_window=window)


def test_single_request_completes():
    sim, _, controller = _setup()
    done = []
    controller.submit(0, 64, False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert controller.queue_depth == 0


def test_multi_line_request_fires_once():
    sim, _, controller = _setup()
    done = []
    controller.submit(0, 1024, False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert len(done) == 1  # 16 lines, one completion event


def test_row_hit_reordering_happens():
    sim, module, controller = _setup(window=8)
    timing = DDR4_2400_LRDIMM
    # same bank, alternating rows: A B A B -> FR-FCFS pulls the second A
    # forward while row A is open
    row_stride = timing.banks_per_rank * timing.row_bytes
    addresses = [0, row_stride, 64 * timing.banks_per_rank, row_stride + 64 * timing.banks_per_rank]
    for address in addresses:
        controller.submit(address, 64, False)
    sim.run()
    assert controller.row_hits_scheduled >= 1


def test_reordering_beats_fifo_on_interleaved_rows():
    def run(window):
        sim, module, controller = _setup(window=window)
        timing = DDR4_2400_LRDIMM
        row_stride = timing.banks_per_rank * timing.row_bytes
        ends = []
        for index in range(12):
            row = (index % 2) * row_stride
            column = (index // 2) * 64 * timing.banks_per_rank
            controller.submit(row + column, 64, False).add_callback(
                lambda ev: ends.append(sim.now)
            )
        sim.run()
        return max(ends)

    assert run(window=12) < run(window=1)


def test_fcfs_order_preserved_without_hits():
    sim, _, controller = _setup()
    order = []
    for index in range(4):
        controller.submit(index * 64, 64, False).add_callback(
            lambda ev, i=index: order.append(i)
        )
    sim.run()
    assert order == [0, 1, 2, 3]


def test_invalid_inputs_rejected():
    sim, module, controller = _setup()
    with pytest.raises(SimulationError):
        controller.submit(0, 0, False)
    with pytest.raises(SimulationError):
        FRFCFSController(sim, module, reorder_window=0)


def test_requests_counter():
    sim, _, controller = _setup()
    controller.submit(0, 64, False)
    controller.submit(4096, 64, True)
    sim.run()
    assert controller.requests == 2


@pytest.mark.parametrize("legacy", [False, True])
def test_head_row_hit_is_counted(legacy):
    # Regression: a row hit found at queue index 0 must count in
    # row_hits_scheduled (the old scan only incremented for index > 0).
    sim = Simulator()
    module = DRAMModule(sim, DDR4_2400_LRDIMM, 1, StatRegistry())
    controller = FRFCFSController(sim, module, legacy_scan=legacy)
    timing = DDR4_2400_LRDIMM
    # Four sequential same-row lines in one bank: after the first access
    # opens the row, every later pick is a head-of-queue row hit.
    for index in range(4):
        controller.submit(index * 64 * timing.banks_per_rank, 64, False)
    sim.run()
    assert controller.row_hits_scheduled == 3
