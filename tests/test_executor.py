"""Tests for the thread executor (window, drain, stall attribution)."""

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.nmp.system import NMPSystem
from repro.workloads.ops import Compute, Flush, Read, Write


def _run(ops, config="4D-2C", placement=None):
    system = NMPSystem(SystemConfig.named(config))
    result = system.run([lambda: iter(list(ops))], placement=placement or [0])
    return system, result


def test_unknown_op_rejected():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    with pytest.raises(WorkloadError):
        system.run([lambda: iter(["not-an-op"])])


def test_compute_only_thread_time():
    _, result = _run([Compute(2500)])  # 2500 cycles at 2.5 GHz = 1000 ns
    assert result.time_ps == pytest.approx(1_000_000, rel=0.01)


def test_window_limits_outstanding_requests():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    ops = [Read(dimm=1, offset=i * 64, nbytes=64) for i in range(64)]
    ops.append(Flush())
    system.run([lambda: iter(list(ops))], placement=[0])
    window = system.config.nmp.outstanding_window
    assert system.dimms[0].cores[0]._window.peak_in_use <= window


def test_flush_waits_for_outstanding_writes():
    system, result = _run([Write(dimm=1, offset=0, nbytes=1 << 16), Flush()])
    # the remote write must have fully completed inside the thread's time
    assert result.time_ps >= (1 << 16) / 25.0 * 1000  # wire time on one link


def test_cache_hits_recorded_for_local_reads():
    ops = [Read(dimm=0, offset=i * 64, nbytes=64) for i in range(200)]
    ops.append(Flush())
    system, result = _run(ops)
    hits = result.counter("core.cache_hits")
    assert 0 < hits < 200
    # roughly the configured local hit rate
    assert hits / 200 == pytest.approx(0.25, abs=0.1)


def test_remote_ops_counted():
    ops = [Read(dimm=1, offset=0, nbytes=64), Read(dimm=0, offset=0, nbytes=64), Flush()]
    _, result = _run(ops)
    assert result.counter("core.mem_ops") == 2
    assert result.counter("core.remote_ops") == 1
    assert result.counter("core.remote_bytes") == 64
