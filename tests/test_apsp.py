"""Blocked Floyd–Warshall workload: exact APSP numerics + traffic model.

The core property: the tiled min-plus schedule (any phase order, any
block size, ragged edge tiles included) equals the plain triple-loop
reference exactly — integer weights with an INF-guarded min-plus make
equality bitwise.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.experiments.common import build_workload, run_cpu, run_nmp
from repro.workloads.apsp import (
    APSP_MECHANISMS,
    INF,
    ROUND_STAMP,
    BlockedFloydWarshall,
)
from repro.workloads.ops import Barrier, Broadcast, Stamp


# -- construction and determinism ----------------------------------------------------


def test_rejects_nonsense_shapes():
    with pytest.raises(WorkloadError):
        BlockedFloydWarshall(n=0)
    with pytest.raises(WorkloadError):
        BlockedFloydWarshall(n=8, block=16)
    with pytest.raises(WorkloadError):
        BlockedFloydWarshall(density=0.0)
    with pytest.raises(WorkloadError):
        BlockedFloydWarshall(density=1.5)


def test_adjacency_is_deterministic_and_well_formed():
    a = BlockedFloydWarshall(n=24, block=8, seed=5)
    b = BlockedFloydWarshall(n=24, block=8, seed=5)
    assert a.adjacency() == b.adjacency()
    assert a.adjacency() != BlockedFloydWarshall(n=24, block=8, seed=6).adjacency()
    for i, row in enumerate(a.adjacency()):
        assert row[i] == 0
        assert all(w == INF or 1 <= w <= 16 for j, w in enumerate(row) if j != i)


# -- golden-result property tests ----------------------------------------------------


@pytest.mark.parametrize(
    "n,block,seed,density",
    [
        (12, 4, 1, 0.3),
        (16, 5, 2, 0.25),  # ragged: 16 % 5 != 0
        (20, 7, 3, 0.2),  # ragged
        (24, 6, 4, 0.35),
        (24, 24, 5, 0.25),  # single tile
        (30, 9, 6, 0.15),  # ragged, sparse
        (32, 8, 7, 0.5),
        (33, 10, 8, 0.25),  # ragged
        (40, 12, 9, 0.1),  # sparse: unreachable pairs stay INF
        (48, 16, 10, 0.25),
    ],
)
def test_blocked_schedule_equals_reference(n, block, seed, density):
    workload = BlockedFloydWarshall(n=n, block=block, seed=seed, density=density)
    reference = workload.reference_distances()
    assert workload.blocked_distances(order="row_first") == reference
    assert workload.blocked_distances(order="col_first") == reference


@pytest.mark.parametrize("mechanism", APSP_MECHANISMS)
def test_every_mechanism_schedule_equals_reference(mechanism):
    workload = BlockedFloydWarshall(n=26, block=7, seed=11)
    assert workload.distances_via(mechanism) == workload.reference_distances()


def test_unreachable_pairs_keep_the_inf_sentinel():
    # density 0.02 on 24 nodes leaves disconnected pairs with certainty
    workload = BlockedFloydWarshall(n=24, block=6, seed=3, density=0.02)
    reference = workload.reference_distances()
    unreachable = sum(
        1 for row in reference for value in row if value == INF
    )
    assert unreachable > 0  # sentinel survived untouched (no INF + w creep)
    assert workload.blocked_distances() == reference
    assert max(v for row in reference for v in row if v < INF) < INF // 2


def test_rejects_unknown_order_and_mechanism():
    workload = BlockedFloydWarshall(n=12, block=4)
    with pytest.raises(WorkloadError):
        workload.blocked_distances(order="diagonal")
    with pytest.raises(WorkloadError):
        workload.distances_via("warp")


# -- traffic model -------------------------------------------------------------------


def test_tile_owner_and_home_cover_everything():
    workload = BlockedFloydWarshall(n=48, block=12)
    owners = set()
    homes = set()
    for ti in range(workload.tiles):
        for tj in range(workload.tiles):
            owners.add(workload.tile_owner(ti, tj, 8))
            homes.add(workload.tile_home(ti, tj, 4))
    assert owners <= set(range(8))
    assert homes == set(range(4))  # every DIMM stores some tiles


def test_factories_are_reinvocable_and_deterministic():
    workload = BlockedFloydWarshall(n=36, block=12, seed=2)
    factories = workload.thread_factories(8, 4)
    first = [list(f()) for f in factories]
    second = [list(f()) for f in factories]
    assert first == second


def test_op_stream_has_per_round_broadcasts_barriers_and_stamps():
    workload = BlockedFloydWarshall(n=48, block=12, seed=2)
    tiles = workload.tiles
    num_threads = 8
    factories = workload.thread_factories(num_threads, 4)
    total_broadcasts = 0
    for factory in factories:
        ops = list(factory())
        barriers = [op for op in ops if isinstance(op, Barrier)]
        stamps = [op for op in ops if isinstance(op, Stamp)]
        total_broadcasts += sum(1 for op in ops if isinstance(op, Broadcast))
        # three phase barriers and one round stamp per pivot round, even
        # for threads owning no tile in some phase (no deadlock skew)
        assert len(barriers) == 3 * tiles
        assert len(stamps) == tiles
        assert all(op.key == ROUND_STAMP for op in stamps)
    # per round: the pivot tile + every pivot-row/column tile floods once
    assert total_broadcasts == tiles * (2 * tiles - 1)


# -- end-to-end runs -----------------------------------------------------------------


def test_nmp_run_counts_broadcasts_and_round_latencies():
    config = SystemConfig.named("4D-2C")
    workload = build_workload("apsp", "tiny")
    result = run_nmp(config, workload, mechanism="dimm_link")
    tiles = workload.tiles
    assert result.counter("core.broadcasts") == tiles * (2 * tiles - 1)
    histograms = result.stats.histograms_suffix(ROUND_STAMP)
    threads = config.num_dimms * config.nmp.cores_per_dimm
    assert sum(h.count for h in histograms.values()) == threads * tiles


def test_cpu_run_executes_the_same_stream():
    config = SystemConfig.named("4D-2C")
    workload = build_workload("apsp", "tiny")
    result = run_cpu(config, workload)
    assert result.time_ps > 0
    histograms = result.stats.histograms_suffix(ROUND_STAMP)
    assert sum(h.count for h in histograms.values()) > 0


def test_build_workload_overrides_shape():
    workload = build_workload("apsp", "tiny", overrides={"n": 60, "block": 12})
    assert isinstance(workload, BlockedFloydWarshall)
    assert (workload.n, workload.block) == (60, 12)
