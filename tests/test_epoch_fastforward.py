"""Differential suite for the epoch-synchronized fast-forward loop.

The epoch loop (:meth:`Simulator._run_epoch`, the default) must be
observationally indistinguishable from the legacy one-pop-per-event loop
(``legacy=True``): same callback order, same clock values, same error
behaviour, same stats, same trace streams — bit-identical, the property
that lets :data:`repro.results_cache.CODE_VERSION` stay unchanged across
the refactor.  Every test here runs the same scenario under both loops
and asserts the observable outcome is equal.
"""

import json

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.experiments.runner import RunSpec, execute_spec
from repro.sim import (
    BandwidthResource,
    Simulator,
    StallWatchdog,
    default_loop_legacy,
    set_default_loop,
)

# -- engine-level probes -----------------------------------------------------------


def _probe_sim(legacy):
    """A scenario crossing every scheduling path: countdown-queue timers,
    plain heap timers, intra-epoch arrival chains, processes, and one
    deliberately non-monotone timer that must fall back to the heap."""
    sim = Simulator(legacy=legacy)
    log = []

    def note(tag):
        log.append((sim.now, tag))

    link = BandwidthResource(sim, 10.0, latency_ps=40_000, name="link")
    aux = sim.timer_queue("aux")

    def worker(count, size, tag):
        for i in range(count):
            yield link.transfer(size)
            note(f"{tag}:{i}")

    sim.process(worker(25, 256, "wa"), name="wa")
    sim.process(worker(25, 192, "wb"), name="wb")

    def chain(depth):
        note(f"chain:{depth}")
        if depth:
            # 1.5ns < the link's 40ns lookahead: lands inside the open
            # epoch and must merge through the pending heap
            sim.schedule(1_500, chain, depth - 1)

    sim.schedule(3_000, chain, 12)

    when = 5_000
    for i in range(30):
        sim.at_monotone(aux, when, note, f"aux:{i}")
        when += 7_000
    sim.at_monotone(aux, 12_345, note, "aux:ooo")  # non-monotone -> heap

    for i in range(10):
        sim.at(9_000 + 17_000 * i, note, f"at:{i}")
    return sim, log


def test_event_order_is_identical_across_loops():
    sim_e, log_e = _probe_sim(legacy=False)
    sim_l, log_l = _probe_sim(legacy=True)
    end_e = sim_e.run()
    end_l = sim_l.run()
    assert log_e  # the probe actually exercised something
    assert log_e == log_l
    assert end_e == end_l


def test_until_segments_match_single_shot():
    """Slicing a run into ``until`` segments must not change anything."""
    sim_one, log_one = _probe_sim(legacy=False)
    sim_one.run()

    for legacy in (False, True):
        sim, log = _probe_sim(legacy=legacy)
        now = 0
        for horizon in range(20_000, 400_000, 37_000):
            now = sim.run(until=horizon)
            assert now == horizon  # clock always lands on the horizon
        sim.run()
        assert log == log_one


def test_max_events_budget_parity():
    n_events = _probe_event_count()

    for legacy in (False, True):
        # a run completing in exactly max_events events must NOT raise
        sim, log = _probe_sim(legacy=legacy)
        sim.run(max_events=n_events)
        assert len(log) > 0

        # one short of the budget must raise, and the queue must stay
        # consistent enough to resume to the identical final state
        sim, log = _probe_sim(legacy=legacy)
        with pytest.raises(SimulationError):
            sim.run(max_events=n_events - 1)
        sim.run()
        _sim_ref, log_ref = _probe_sim(legacy=True)
        _sim_ref.run()
        assert log == log_ref


def _probe_event_count():
    """Exact number of events the probe executes: the smallest
    ``max_events`` budget the reference loop completes under."""
    low, high = 0, 10_000
    while low < high:
        mid = (low + high) // 2
        sim, _log = _probe_sim(legacy=True)
        try:
            sim.run(max_events=mid)
        except SimulationError:
            low = mid + 1
        else:
            high = mid
    return low


def test_deadlock_detection_parity():
    messages = []
    for legacy in (False, True):
        sim = Simulator(legacy=legacy)
        never = sim.event(name="never")

        def waiter():
            yield never

        sim.process(waiter(), name="stuck")
        sim.schedule(1_000, lambda _arg: None)
        with pytest.raises(DeadlockError) as excinfo:
            sim.run(watchdog=StallWatchdog(detect_deadlock=True))
        messages.append(str(excinfo.value))
    assert messages[0] == messages[1]


def test_default_loop_round_trip():
    baseline = default_loop_legacy()
    try:
        previous = set_default_loop(True)
        assert previous == baseline
        assert default_loop_legacy() is True
        assert Simulator()._legacy is True
        assert set_default_loop(False) is True
        assert Simulator()._legacy is False
    finally:
        set_default_loop(baseline)


def test_lookahead_domain_validation_and_update():
    sim = Simulator()
    domain = sim.register_lookahead("x", 10_000)
    assert domain.lookahead_ps == 10_000
    with pytest.raises(SimulationError):
        sim.register_lookahead("bad", 0)
    with pytest.raises(SimulationError):
        domain.update(-5)
    domain.update(70_000)
    assert domain.lookahead_ps == 70_000


# -- TimerQueue unit coverage ------------------------------------------------------


def test_timer_queue_take_until_partial_then_steal():
    sim = Simulator()
    fifo = sim.timer_queue("t")
    fired = []
    for when in (10, 20, 30):
        sim.at_monotone(fifo, when, fired.append, when)
    assert fifo.pending == 3
    assert fifo.head_key()[0] == 10

    first = fifo.take_until(15)  # partial: head advances
    assert [entry[0] for entry in first] == [10]
    assert fifo.pending == 2

    rest = fifo.take_until(30)  # consumes through the end with head > 0
    assert [entry[0] for entry in rest] == [20, 30]
    assert fifo.pending == 0
    assert fifo.head_key() is None

    # the queue must be cleanly reusable after the backing lists reset
    sim.at_monotone(fifo, 40, fired.append, 40)
    assert fifo.pending == 1
    stolen = fifo.take_until(100)  # head == 0: the list itself is handed over
    assert [entry[0] for entry in stolen] == [40]
    assert fifo.pending == 0


def test_timer_queue_compaction_keeps_entries_aligned():
    sim = Simulator()
    fifo = sim.timer_queue("big")
    total = 5_000
    for when in range(1, total + 1):
        sim.at_monotone(fifo, when, lambda _a: None, None)
    taken = fifo.take_until(4_500)  # crosses the compaction threshold
    assert len(taken) == 4_500
    assert fifo.pending == 500
    assert fifo.head_key()[0] == 4_501
    rest = fifo.take_until(total)
    assert [entry[0] for entry in rest] == list(range(4_501, total + 1))


def test_non_monotone_timers_preserve_global_order():
    for legacy in (False, True):
        sim = Simulator(legacy=legacy)
        fifo = sim.timer_queue("mix")
        order = []
        for when in (50_000, 60_000, 20_000, 70_000, 10_000):
            sim.at_monotone(fifo, when, order.append, when)
        sim.run()
        assert order == [10_000, 20_000, 50_000, 60_000, 70_000]


# -- mechanism-level differential --------------------------------------------------

#: one tiny spec per mechanism plus the special corners (CPU baseline,
#: DL-opt flow, fault injection) — mirrors the determinism suite.
SPECS = {
    "cpu": RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", kind="cpu", mechanism="cpu"
    ),
    "mcn": RunSpec(config="4D-2C", workload="pagerank", size="tiny", mechanism="mcn"),
    "aim": RunSpec(config="4D-2C", workload="pagerank", size="tiny", mechanism="aim"),
    "abc": RunSpec(config="4D-2C", workload="spmv_bc", size="tiny", mechanism="abc"),
    "dimm_link": RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", mechanism="dimm_link"
    ),
    "dl_opt": RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", kind="optimized"
    ),
    "faulted": RunSpec(
        config="8D-4C",
        workload="uniform_random",
        size="tiny",
        seed=11,
        mechanism="dimm_link",
        fault_fraction=0.67,
    ),
}


def _execute_under(spec, legacy):
    previous = set_default_loop(legacy)
    try:
        return execute_spec(spec)
    finally:
        set_default_loop(previous)


@pytest.mark.parametrize("label", sorted(SPECS))
def test_run_results_identical_across_loops(label):
    spec = SPECS[label]
    epoch = json.dumps(_execute_under(spec, False).to_json_dict(), sort_keys=True)
    legacy = json.dumps(_execute_under(spec, True).to_json_dict(), sort_keys=True)
    assert epoch == legacy


def test_trace_streams_identical_across_loops():
    """Spans, instants, and sampler windows — not just end-of-run stats."""
    from repro.experiments.trace_run import run_traced

    captures = []
    for legacy in (False, True):
        previous = set_default_loop(legacy)
        try:
            traced = run_traced("table1", size="tiny")
        finally:
            set_default_loop(previous)
        recorder = traced["recorder"]
        sampler = traced["sampler"]
        captures.append(
            (
                recorder.spans,
                recorder.instants,
                recorder.dropped,
                sampler.samples,
                sampler.widths,
                traced["result"].time_ps,
            )
        )
    assert captures[0] == captures[1]


def test_loops_can_interleave_on_one_simulator():
    """run(legacy=True) mid-stream drains the countdown queues safely."""
    sim_ref, log_ref = _probe_sim(legacy=False)
    sim_ref.run()

    sim, log = _probe_sim(legacy=False)
    sim.run(until=60_000)
    sim.run(until=200_000, legacy=True)  # legacy slice in the middle
    sim.run()
    assert log == log_ref
    assert sim.now == sim_ref.now
