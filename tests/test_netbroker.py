"""NetBroker suite: the socket WorkBroker proxy for shared-nothing
farms, and its degradation to direct file-broker mode when the service
endpoint dies mid-sweep."""

import contextlib
import threading
import time

import pytest

from repro.experiments.runner import SweepRunner
from repro.fabric import faultpoints
from repro.fabric.broker import BrokerConfig, WorkBroker
from repro.fabric.netbroker import NetBroker
from repro.fabric.worker import Worker
from repro.results_cache import ResultsCache
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.server import ReproService, ServiceThread
from tests.test_fabric import grid
from tests.test_results_cache import fake_result


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.reset()
    yield
    faultpoints.reset()


@contextlib.contextmanager
def serve(tmp_path, **service_kwargs):
    service_kwargs.setdefault(
        "config", BrokerConfig(lease_ttl_s=5.0, backoff_s=0.01)
    )
    service_kwargs.setdefault("durable", False)
    service_kwargs.setdefault("poll_interval_s", 0.02)
    service = ReproService(tmp_path / "broker", **service_kwargs)
    thread = ServiceThread(service).start()
    try:
        yield service, thread
    finally:
        thread.drain(timeout_s=30.0)


def netbroker(thread, **kwargs):
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("backoff_cap_s", 0.05)
    return NetBroker(thread.address, **kwargs)


def test_worker_over_socket_drains_grid_byte_identical(tmp_path):
    """The tentpole end-to-end: submit over the socket, execute through
    a NetBroker-backed worker, and the shared cache is byte-identical to
    a serial in-process run — the exactly-once bar."""
    specs = grid(6)
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        assert client.submit(specs)["report"]["enqueued"] == 6
        broker = netbroker(thread)
        assert broker.config.lease_ttl_s == 5.0  # farm policy from hello
        worker = Worker(broker, execute=fake_result, poll_interval_s=0.01)
        assert worker.run() == 6
        assert worker.completed == 6 and worker.leases_lost == 0
        assert broker.drained()
        assert broker.counts()["done"] == 6
        assert not broker.degraded
        broker.close()
        client.close()

        serial = SweepRunner(
            jobs=1, cache=ResultsCache(tmp_path / "serial"), execute=fake_result
        )
        serial.run(specs)
        for spec in specs:
            key = spec.cache_key()
            assert service.broker.cache.path_for(key).read_bytes() == (
                serial.cache.path_for(key).read_bytes()
            )
        assert service.broker.leases.live_count() == 0


def test_netbroker_cache_roundtrips_results_over_the_wire(tmp_path):
    spec = grid(1)[0]
    key = spec.cache_key()
    with serve(tmp_path) as (service, thread):
        broker = netbroker(thread)
        assert broker.cache.get(key) is None
        broker.cache.put(key, fake_result(spec), spec=spec.to_json_dict())
        assert broker.cache.get(key) == fake_result(spec)
        # the payload really crossed the socket into the server's store
        assert service.broker.cache.get(key) == fake_result(spec)
        broker.close()


def test_netbroker_heartbeats_use_a_dedicated_connection(tmp_path):
    """Lease renews must not interleave with main-thread RPC frames —
    they run on their own client/socket."""
    with serve(tmp_path) as (service, thread):
        broker = netbroker(thread)
        spec = grid(1)[0]
        broker.submit([spec])
        record = broker.claim("w1")
        assert record is not None
        assert broker.leases.renew(record.key, "w1") is True
        assert broker._lease_client._sock is not None
        assert broker._lease_client._sock is not broker.client._sock
        broker.close()


def test_netbroker_without_fallback_surfaces_unavailable(tmp_path):
    dead = NetBroker(
        "tcp://127.0.0.1:1", retries=1, backoff_s=0.01, backoff_cap_s=0.02
    )
    with pytest.raises(ServiceUnavailable):
        dead.claim("w1")
    assert not dead.degraded
    dead.close()


def test_netbroker_degrades_to_file_broker_when_endpoint_dies(tmp_path):
    """Mid-sweep server death with a shared filesystem: the netbroker
    flips to a direct WorkBroker on the fallback root and the sweep
    finishes without losing the claim it held."""
    specs = grid(4)
    root = tmp_path / "broker"
    with serve(tmp_path) as (service, thread):
        broker = netbroker(thread, fallback_root=str(root), retries=2)
        broker.submit(specs)
        first = broker.claim("w1")  # claimed over the socket
        assert first is not None and not broker.degraded
        thread.drain(timeout_s=30.0)  # the endpoint dies mid-sweep

        # outcome for the in-flight claim arrives via the fallback path
        spec_by_key = {spec.cache_key(): spec for spec in specs}
        broker.cache.put(first.key, fake_result(spec_by_key[first.key]))
        assert broker.complete(first.key, "w1") is True
        assert broker.degraded

        worker = Worker(broker, execute=fake_result, poll_interval_s=0.01)
        worker.run()
        assert broker.drained()
        counts = broker.counts()
        assert counts["done"] == 4 and counts["dead"] == 0
        assert WorkBroker(root).leases.live_count() == 0
        broker.close()


def test_degraded_netbroker_stays_on_file_mode(tmp_path):
    """Degradation is one-way: once flipped, ops keep using the file
    broker even for fresh claims (no flapping back to a dead socket)."""
    root = tmp_path / "broker"
    WorkBroker(root, config=BrokerConfig(lease_ttl_s=5.0)).submit(grid(2))
    broker = NetBroker(
        "tcp://127.0.0.1:1", fallback_root=str(root),
        retries=1, backoff_s=0.01, backoff_cap_s=0.02,
    )
    record = broker.claim("w1")  # first op degrades and then succeeds
    assert broker.degraded and record is not None
    assert broker.complete(record.key, "w1") is True
    assert broker.claim("w1") is not None  # still served, no socket
    broker.close()


def test_worker_sweep_survives_server_death_with_fallback(tmp_path):
    """A full worker loop running while the server drains away: every
    spec still lands done, exactly once."""
    specs = grid(5)
    root = tmp_path / "broker"
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        client.submit(specs)
        client.close()
        broker = netbroker(thread, fallback_root=str(root), retries=2)

        finished = threading.Event()

        def slow_enough(spec):
            time.sleep(0.05)
            return fake_result(spec)

        worker = Worker(broker, execute=slow_enough, poll_interval_s=0.01)

        def run_worker():
            worker.run()
            finished.set()

        runner = threading.Thread(target=run_worker)
        runner.start()
        deadline = time.monotonic() + 20.0
        while worker.completed < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        thread.drain(timeout_s=30.0)  # kill the endpoint mid-sweep
        assert finished.wait(30.0)
        runner.join(10.0)

        assert broker.degraded
        counts = WorkBroker(root).counts()
        assert counts["done"] == 5 and counts["total"] == 5
        for spec in specs:
            assert service.broker.cache.get(spec.cache_key()) == fake_result(spec)
        broker.close()
