"""Tests for the graph-kernel machinery (layout, BFS levels, gathers)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.graphkernels import GraphKernel, data_dimm, natural_homes
from repro.workloads.bfs import BFS
from repro.workloads.graph import rmat


class _Kernel(GraphKernel):
    name = "probe"

    def thread_factories(self, num_threads, num_dimms):  # pragma: no cover
        raise NotImplementedError


def test_bfs_levels_match_networkx():
    kernel = _Kernel(scale=8, edge_factor=4, seed=5)
    levels = kernel.bfs_levels(source=0)
    graph = nx.Graph()
    graph.add_nodes_from(range(kernel.graph.num_vertices))
    for v in range(kernel.graph.num_vertices):
        for u in kernel.graph.neighbors(v):
            graph.add_edge(v, int(u))
    reference = nx.single_source_shortest_path_length(graph, 0)
    for vertex in range(kernel.graph.num_vertices):
        expected = reference.get(vertex, -1)
        assert levels[vertex] == expected


def test_layout_edge_totals_conserved():
    kernel = _Kernel(scale=9, seed=2, byte_scale=1)
    layout = kernel._layout(16, 4)
    assert layout["edges_to_dimm"].sum() == kernel.graph.num_edges
    assert layout["block_edges"].sum() == kernel.graph.num_edges
    assert layout["block_vertices"].sum() == kernel.graph.num_vertices


def test_layout_cached_per_shape():
    kernel = _Kernel(scale=8)
    first = kernel._layout(8, 4)
    assert kernel._layout(8, 4) is first
    assert kernel._layout(16, 4) is not first


def test_byte_scale_scales_layout():
    plain = _Kernel(scale=8, seed=3, byte_scale=1)._layout(8, 4)
    scaled = _Kernel(scale=8, seed=3, byte_scale=5)._layout(8, 4)
    assert scaled["block_edges"].sum() == 5 * plain["block_edges"].sum()


def test_more_threads_than_vertices_rejected():
    kernel = _Kernel(scale=3)  # 8 vertices
    with pytest.raises(WorkloadError):
        kernel._layout(16, 4)


def test_invalid_byte_scale_rejected():
    with pytest.raises(WorkloadError):
        _Kernel(scale=8, byte_scale=0)


def test_data_dimm_block_major():
    assert [data_dimm(b, 8, 4) for b in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert natural_homes(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_spread_bytes_applies_dedup_and_scale():
    row = np.array([100, 0, 50])
    spread = GraphKernel.spread_bytes(row, scale=0.5, dedup=0.5)
    assert spread == {0: 100 * 8 // 4, 2: 50 * 8 // 4}
    assert 1 not in spread


def test_explicit_graph_skips_generation():
    graph = rmat(7, 4, seed=1)
    kernel = _Kernel(graph=graph)
    # the provided graph is partition-refined in place of generation
    assert kernel.graph.num_edges == graph.num_edges


def test_bfs_workload_levels_drive_barrier_count():
    workload = BFS(scale=8, seed=5)
    streams = [list(f()) for f in workload.thread_factories(8, 4)]
    from repro.workloads.ops import Barrier

    barriers = sum(isinstance(op, Barrier) for op in streams[0])
    assert barriers == int(workload._levels.max())
