"""Property-style suite for the torn-tail JSONL contract.

The whole fabric leans on one invariant of :func:`repro.fsio.read_json_lines`:
a crash may tear the *tail* of an append-only JSONL file at any byte,
and replaying the file must yield **exactly the prefix of records whose
append fully committed** — never an exception, never a mangled record,
never a record out of order.  This suite proves it exhaustively: the
file is truncated at *every* byte offset and the decoded result is
compared against the analytically expected prefix.

(The deeper reason the property holds: every record is one
``json.dumps`` object per line, and no proper byte-prefix of a JSON
object is itself valid JSON — the closing brace is always missing — so
a torn line can only ever parse as *nothing*, not as a wrong record.)
"""

import json

import pytest

from repro.fsio import append_line, read_json_lines


def _records(count):
    """Journal-shaped records with varied value shapes (strings,
    numbers, nesting, unicode) to stress the parse boundary."""
    return [
        {
            "key": f"spec-{index:04d}",
            "state": ["pending", "leased", "done", "dead"][index % 4],
            "attempts": index,
            "not_before": index * 0.25,
            "worker": f"host-{index}-é中",
            "extra": {"nested": [index, None, True], "t": index % 2 == 0},
        }
        for index in range(count)
    ]


def _write_jsonl(path, records):
    """Append each record the way the journal does; return, per record,
    the byte offset at which its line is fully decodable (the closing
    byte of its JSON text — the newline is *not* required)."""
    commit_offsets = []
    offset = 0
    for record in records:
        line = json.dumps(record, sort_keys=True, ensure_ascii=False)
        append_line(path, line, durable=False)
        encoded = line.encode("utf-8")
        commit_offsets.append(offset + len(encoded))
        offset += len(encoded) + 1  # the newline append_line adds
    assert path.stat().st_size == offset
    return commit_offsets


def test_truncation_at_every_byte_yields_exact_prefix(tmp_path):
    """The exhaustive property: for every cut point 0..filesize, the
    decoded records are exactly the committed prefix."""
    records = _records(12)
    source = tmp_path / "journal.jsonl"
    commit_offsets = _write_jsonl(source, records)
    blob = source.read_bytes()

    torn = tmp_path / "torn.jsonl"
    for cut in range(len(blob) + 1):
        torn.write_bytes(blob[:cut])
        expected = sum(1 for off in commit_offsets if off <= cut)
        decoded = list(read_json_lines(torn))  # must never raise
        assert decoded == records[:expected], (
            f"cut at byte {cut}: expected the first {expected} records"
        )


def test_truncation_mid_multibyte_character_is_not_fatal(tmp_path):
    """A cut inside a UTF-8 multibyte sequence (the nastiest torn tail)
    decodes to the intact prefix, not a crash."""
    records = _records(3)
    source = tmp_path / "journal.jsonl"
    _write_jsonl(source, records)
    blob = source.read_bytes()
    # find a continuation byte (0b10xxxxxx) to cut right before
    cuts = [i for i, b in enumerate(blob) if b & 0xC0 == 0x80]
    assert cuts, "fixture must contain multibyte characters"
    torn = tmp_path / "torn.jsonl"
    for cut in cuts:
        torn.write_bytes(blob[:cut])
        decoded = list(read_json_lines(torn))
        assert decoded == records[: len(decoded)]
        assert len(decoded) < len(records)


def test_missing_and_empty_files_decode_to_nothing(tmp_path):
    assert list(read_json_lines(tmp_path / "never-written.jsonl")) == []
    empty = tmp_path / "empty.jsonl"
    empty.write_bytes(b"")
    assert list(read_json_lines(empty)) == []


@pytest.mark.parametrize("garbage", [b"\x00\xff\xfe", b"{", b'{"key": ', b"null\n"])
def test_leading_garbage_never_breaks_later_records(tmp_path, garbage):
    """A torn fragment *followed by* healthy appends (crash, then the
    next writer appended anyway) yields the healthy records."""
    records = _records(2)
    path = tmp_path / "journal.jsonl"
    path.write_bytes(garbage + b"\n")
    for record in records:
        append_line(
            path,
            json.dumps(record, sort_keys=True, ensure_ascii=False),
            durable=False,
        )
    assert list(read_json_lines(path)) == records
