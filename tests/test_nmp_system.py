"""Tests for NMP system assembly and kernel execution."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError, WorkloadError
from repro.nmp.localmc import LocalMemoryController
from repro.nmp.system import NMPSystem
from repro.sim import Simulator, StatRegistry
from repro.workloads.microbench import UniformRandom
from repro.workloads.ops import Barrier, Compute, Flush, Read, Write


def _simple_thread(ops):
    def factory():
        return iter(list(ops))
    return factory


# -- assembly -------------------------------------------------------------------

def test_system_builds_all_components():
    system = NMPSystem(SystemConfig.named("8D-4C"))
    assert len(system.dimms) == 8
    assert len(system.channels) == 4
    assert system.idc.name == "dimm_link"
    assert system.polling.name == "proxy"
    assert all(len(d.cores) == 4 for d in system.dimms)


def test_default_polling_per_mechanism():
    assert NMPSystem(SystemConfig.named("4D-2C"), idc="mcn").polling.name == "baseline"
    assert NMPSystem(SystemConfig.named("4D-2C"), idc="dimm_link").polling.name == "proxy"


def test_proxy_polling_requires_dimm_link():
    with pytest.raises(ConfigError):
        NMPSystem(SystemConfig.named("4D-2C"), idc="mcn", polling="proxy")


# -- placement -------------------------------------------------------------------

def test_natural_placement_blocks():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    assert system.natural_placement(16) == [i // 4 for i in range(16)]


def test_placement_capacity_enforced():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    with pytest.raises(WorkloadError):
        system.run([_simple_thread([Compute(1)])] * 5, placement=[0] * 5)


def test_placement_unknown_dimm_rejected():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    with pytest.raises(WorkloadError):
        system.run([_simple_thread([Compute(1)])], placement=[9])


def test_placement_length_mismatch_rejected():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    with pytest.raises(WorkloadError):
        system.run([_simple_thread([Compute(1)])] * 2, placement=[0])


def test_empty_kernel_rejected():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    with pytest.raises(WorkloadError):
        system.run([])


# -- execution ---------------------------------------------------------------------

def test_run_returns_per_thread_ends():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    result = system.run(
        [
            _simple_thread([Compute(1000)]),
            _simple_thread([Compute(2000)]),
        ]
    )
    assert len(result.thread_end_ps) == 2
    assert result.time_ps == max(result.thread_end_ps)
    assert result.thread_end_ps[1] > result.thread_end_ps[0]


def test_local_read_does_not_touch_idc():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    system.run([_simple_thread([Read(dimm=0, offset=0, nbytes=4096), Flush()])])
    assert system.stats.sum_suffix("idc.local_bytes") == 4096
    assert system.stats.sum_suffix("idc.intra_group_bytes") == 0


def test_remote_read_goes_through_idc():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    system.run(
        [_simple_thread([Read(dimm=2, offset=0, nbytes=4096), Flush()])],
        placement=[0],
    )
    assert system.stats.sum_suffix("idc.intra_group_bytes") == 4096


def test_write_and_barrier_flow():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    ops = [Write(dimm=1, offset=0, nbytes=256), Barrier(), Compute(100)]
    result = system.run([_simple_thread(list(ops)) for _ in range(8)])
    assert result.counter("sync.barriers") == 1
    assert result.counter("core.barriers") == 8


def test_deterministic_replay():
    def run_once():
        system = NMPSystem(SystemConfig.named("8D-4C"))
        workload = UniformRandom(ops_per_thread=60, seed=11)
        return system.run(workload.thread_factories(32, 8)).time_ps

    assert run_once() == run_once()


def test_stall_accounting_sums_to_thread_time():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    workload = UniformRandom(ops_per_thread=50, seed=3)
    result = system.run(workload.thread_factories(16, 4))
    total = result.stats.sum_suffix("core.thread_ps")
    parts = (
        result.stats.sum_suffix("core.busy_ps")
        + result.stats.sum_suffix("core.stall_remote_ps")
        + result.stats.sum_suffix("core.stall_local_ps")
        + result.stats.sum_suffix("core.stall_sync_ps")
    )
    # parts cover the overwhelming majority of thread time (the remainder
    # is issue latency between ops)
    assert parts <= total
    assert parts >= 0.7 * total


def test_run_result_metrics():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    workload = UniformRandom(ops_per_thread=50, remote_fraction=0.5, seed=3)
    result = system.run(workload.thread_factories(16, 4))
    assert 0 <= result.nonoverlapped_idc_ratio <= 1
    breakdown = result.traffic_breakdown
    assert breakdown["local"] > 0
    assert 0 <= result.forwarded_fraction <= 1
    assert result.mean_bus_occupancy >= 0


# -- local MC ----------------------------------------------------------------------

def test_local_mc_requires_idc_for_remote():
    sim, stats = Simulator(), StatRegistry()
    from repro.dram.module import DRAMModule
    from repro.dram.timing import DDR4_2400_LRDIMM

    dram = DRAMModule(sim, DDR4_2400_LRDIMM, 2, stats)
    mc = LocalMemoryController(sim, 0, dram, stats)
    mc.submit(1, 0, 64, False)
    with pytest.raises(RuntimeError):
        sim.run()


def test_local_mc_transaction_buffer_bounded():
    system = NMPSystem(SystemConfig.named("4D-2C"))
    mc = system.dimms[0].mc
    assert mc.buffer.capacity == 64
