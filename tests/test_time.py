"""Tests for time/bandwidth unit helpers (repro.sim.time)."""

import pytest

from repro.sim import time as t


def test_unit_conversions_round_trip():
    assert t.ns(1) == 1_000
    assert t.us(1) == 1_000_000
    assert t.ms(1) == 1_000_000_000
    assert t.to_ns(t.ns(7.5)) == pytest.approx(7.5)
    assert t.to_us(t.us(3)) == 3
    assert t.to_ms(t.ms(2)) == 2
    assert t.to_s(t.S) == 1


def test_cycles_at_frequency():
    assert t.cycles(10, 1.0) == t.ns(10)
    assert t.cycles(10, 2.5) == t.ns(4)
    with pytest.raises(ValueError):
        t.cycles(10, 0)


def test_gbps_identity_and_validation():
    assert t.gbps(25.0) == 25.0
    with pytest.raises(ValueError):
        t.gbps(0)


def test_transfer_ps_basic():
    # 100 bytes at 10 B/ns = 10 ns
    assert t.transfer_ps(100, 10.0) == t.ns(10)
    assert t.transfer_ps(0, 10.0) == 0
    # never zero for a non-empty transfer
    assert t.transfer_ps(1, 1e9) == 1
    with pytest.raises(ValueError):
        t.transfer_ps(-1, 10.0)
    with pytest.raises(ValueError):
        t.transfer_ps(10, 0)


def test_bandwidth_gbps_inverse_of_transfer():
    duration = t.transfer_ps(1 << 20, 25.0)
    assert t.bandwidth_gbps(1 << 20, duration) == pytest.approx(25.0, rel=0.01)
    with pytest.raises(ValueError):
        t.bandwidth_gbps(100, 0)


def test_fmt_picks_sensible_units():
    assert t.fmt(500) == "500ps"
    assert t.fmt(t.ns(5)) == "5.000ns"
    assert t.fmt(t.us(5)) == "5.000us"
    assert t.fmt(t.ms(5)) == "5.000ms"
    assert t.fmt(t.S) == "1.000s"
