"""Edge-case tests for the MCMF placement solver and the co-optimization
loop: tight capacity, zero-traffic threads, single-DIMM systems."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import MappingError
from repro.mapping.placement import (
    co_optimized_placement,
    cost_table,
    distance_matrix,
    solve_placement,
)
from repro.mapping.profile import profile_page_traffic
from repro.workloads.hotpage import HotPage


# -- capacity-tight MCMF -------------------------------------------------------------


def test_exact_capacity_fill_places_every_thread():
    # 8 threads, 4 DIMMs, 2 per DIMM: zero slack, every slot must fill
    rng = np.random.default_rng(5)
    costs = rng.random((8, 4))
    placement = solve_placement(costs, threads_per_dimm=2)
    assert len(placement) == 8
    counts = np.bincount(placement, minlength=4)
    assert np.array_equal(counts, [2, 2, 2, 2])


def test_over_capacity_is_infeasible():
    with pytest.raises(MappingError):
        solve_placement(np.ones((9, 4)), threads_per_dimm=2)


def test_tight_capacity_still_minimizes_cost():
    # each thread strongly prefers one DIMM; with capacity 1 the solver
    # must recover the (unique) zero-cost perfect matching
    costs = np.full((4, 4), 10.0)
    preference = [2, 0, 3, 1]
    for thread, dimm in enumerate(preference):
        costs[thread, dimm] = 0.0
    assert solve_placement(costs, threads_per_dimm=1) == preference


# -- zero-traffic threads ------------------------------------------------------------


def test_zero_traffic_threads_get_valid_slots():
    costs = np.zeros((6, 4))  # no traffic anywhere: any placement is optimal
    costs[0] = [0.0, 5.0, 5.0, 5.0]  # one thread with real traffic
    placement = solve_placement(costs, threads_per_dimm=2)
    assert placement[0] == 0
    assert all(0 <= d < 4 for d in placement)
    assert max(np.bincount(placement, minlength=4)) <= 2


def test_zero_traffic_table_costs_are_zero():
    traffic = np.zeros((4, 4))
    config = SystemConfig.named("4D-2C")
    costs = cost_table(traffic, distance_matrix(config))
    assert costs.shape == (4, 4)
    assert np.all(costs == 0.0)


# -- single-DIMM degenerate ----------------------------------------------------------


def test_single_dimm_takes_all_threads():
    costs = np.zeros((3, 1))
    assert solve_placement(costs, threads_per_dimm=3) == [0, 0, 0]


def test_single_dimm_with_too_little_capacity_is_infeasible():
    with pytest.raises(MappingError):
        solve_placement(np.zeros((3, 1)), threads_per_dimm=2)


# -- the co-optimization loop --------------------------------------------------------


def _factories(config):
    workload = HotPage(rounds=2, private_pages=4, shared_pages=1)
    workload.paged = True
    threads = config.num_dimms * config.nmp.cores_per_dimm
    return workload.thread_factories(threads, config.num_dimms)


def test_co_optimized_placement_reaches_a_fixed_point():
    config = SystemConfig.named("4D-2C")
    factories = _factories(config)
    placement, assignment, rounds = co_optimized_placement(factories, config)
    per_dimm = config.nmp.cores_per_dimm
    assert 1 <= rounds <= 4
    assert len(placement) == len(factories)
    assert max(np.bincount(placement, minlength=config.num_dimms)) <= per_dimm
    assert assignment, "profiling saw paged ops but assigned no pages"
    assert all(0 <= d < config.num_dimms for d in assignment.values())
    # the fixed point really is fixed: one more profile+solve changes nothing
    traffic, touches = profile_page_traffic(
        factories, config.num_dimms, placement, assignment
    )
    again = solve_placement(
        cost_table(traffic, distance_matrix(config)), per_dimm
    )
    assert again == placement


def test_co_optimized_placement_is_deterministic():
    config = SystemConfig.named("4D-2C")
    first = co_optimized_placement(_factories(config), config)
    second = co_optimized_placement(_factories(config), config)
    assert first == second


def test_co_optimized_placement_rejects_bad_rounds():
    config = SystemConfig.named("4D-2C")
    with pytest.raises(MappingError):
        co_optimized_placement(_factories(config), config, max_rounds=0)
