"""Differential harness for the workload suite (dlrm + apsp).

Three layers of byte-level pinning:

* **Loop differential** — every new spec kind produces a bit-identical
  :class:`RunResult` under the epoch fast-forward loop and the legacy
  one-pop-per-event loop, including the trace streams.
* **Scheduler differential** — a mixed dlrm+apsp grid run with
  ``jobs=2`` serializes byte-identically to ``jobs=1``.
* **Cache-key goldens** — the new spec kinds' SHA-256 keys are pinned,
  and the ``params`` field is proven hash-compatible: an empty params
  leaves every pre-existing spec's payload (and key) untouched.

Plus the satellite regressions: ``parse_params`` parsing/canonicalization
and the stat suffix-matching that keeps ``dlrm.*`` / ``apsp.*`` from
aliasing other namespaces.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import (
    RunSpec,
    SweepRunner,
    execute_spec,
    parse_params,
)
from repro.experiments.trace_run import run_traced
from repro.sim import default_loop_legacy, set_default_loop
from repro.sim.stats import StatRegistry

# -- shared fixtures -----------------------------------------------------------------

#: small-but-real specs covering every mechanism label of both suites.
DLRM_SPECS = [
    RunSpec(
        config="4D-2C",
        workload="dlrm",
        size="tiny",
        kind=kind,
        mechanism=mechanism,
        params="batch_size=4",
    )
    for kind, mechanism in (
        ("cpu", "cpu"),
        ("nmp", "mcn"),
        ("nmp", "dimm_link"),
        ("optimized", "dimm_link"),
    )
]
APSP_SPECS = [
    RunSpec(
        config="4D-2C",
        workload="apsp",
        size="tiny",
        kind=kind,
        mechanism=mechanism,
        params="block=12,n=24",
    )
    for kind, mechanism in (
        ("cpu", "cpu"),
        ("nmp", "abc"),
        ("nmp", "dimm_link"),
        ("optimized", "dimm_link"),
    )
]


def result_bytes(spec):
    return json.dumps(execute_spec(spec).to_json_dict(), sort_keys=True)


def serialize(results):
    return json.dumps([r.to_json_dict() for r in results], sort_keys=True)


# -- epoch vs legacy loop ------------------------------------------------------------


@pytest.mark.parametrize(
    "spec", DLRM_SPECS + APSP_SPECS, ids=lambda s: f"{s.workload}-{s.kind}-{s.mechanism}"
)
def test_epoch_and_legacy_loops_agree_byte_for_byte(spec):
    epoch = result_bytes(spec)
    set_default_loop(default_loop_legacy)
    try:
        legacy = result_bytes(spec)
    finally:
        set_default_loop(None)
    assert epoch == legacy


@pytest.mark.parametrize("experiment", ["dlrm", "apsp"])
def test_trace_streams_identical_under_both_loops(experiment):
    epoch = run_traced(experiment, size="tiny")
    set_default_loop(default_loop_legacy)
    try:
        legacy = run_traced(experiment, size="tiny")
    finally:
        set_default_loop(None)
    assert epoch["recorder"].spans == legacy["recorder"].spans
    assert epoch["recorder"].instants == legacy["recorder"].instants
    assert (
        epoch["result"].to_json_dict() == legacy["result"].to_json_dict()
    )


# -- parallel scheduler --------------------------------------------------------------


def test_mixed_workload_grid_is_parallelism_invariant():
    grid = [DLRM_SPECS[0], APSP_SPECS[2], DLRM_SPECS[2], APSP_SPECS[0]]
    serial = SweepRunner(jobs=1).run(grid)
    parallel = SweepRunner(jobs=2).run(grid)
    assert serialize(parallel) == serialize(serial)
    assert [r.workload for r in parallel] == [s.workload for s in grid]


# -- golden cache keys ---------------------------------------------------------------

#: pinned content hashes for the new spec kinds.  These only change when
#: the spec payload or CODE_VERSION changes — both deliberate, reviewed
#: events.  If one of these fails, every previously cached dlrm/apsp
#: result is silently invalid: bump CODE_VERSION instead of repinning
#: unless the payload change was intentional.
GOLDEN_KEYS = {
    "dlrm_cpu": (
        RunSpec(
            config="4D-2C", workload="dlrm", size="tiny",
            kind="cpu", mechanism="cpu", params="batch_size=4",
        ),
        "e0d49e25758ead20ce1cfe9d9d7e984732612bf188ce22f144be5c757d5c53b7",
    ),
    "dlrm_dimm_link": (
        RunSpec(
            config="4D-2C", workload="dlrm", size="tiny",
            kind="nmp", mechanism="dimm_link", params="batch_size=4",
        ),
        "2c50bd49bfe7305f10708717950396736886d072bffd7cb552954dcb81c6ffeb",
    ),
    "dlrm_opt": (
        RunSpec(
            config="4D-2C", workload="dlrm", size="tiny",
            kind="optimized", mechanism="dimm_link", params="batch_size=4",
        ),
        "796bf6b3c567a9aa22b4c9df01756e8e600bd84009dfbeb2735d966b08b8b97f",
    ),
    "apsp_mcn": (
        RunSpec(
            config="4D-2C", workload="apsp", size="tiny",
            kind="nmp", mechanism="mcn", params="block=12,n=48",
        ),
        "0f424ad7f1432ac9f3b86338420514dc536b9c6ad202b845a19714d8e5527d0e",
    ),
    "apsp_dimm_link": (
        RunSpec(
            config="4D-2C", workload="apsp", size="tiny",
            kind="nmp", mechanism="dimm_link", params="block=12,n=48",
        ),
        "6379cb6e1d47986eb4bc99312724d14fbb6e71b93451a8b432c3dba2ea8ae40b",
    ),
    "apsp_no_params": (
        RunSpec(
            config="4D-2C", workload="apsp", size="tiny",
            kind="nmp", mechanism="dimm_link",
        ),
        "00f9e03cc9185c54b3185e8a18be88da43517520c186700eb903426ffea65560",
    ),
}


@pytest.mark.parametrize("label", sorted(GOLDEN_KEYS))
def test_golden_cache_keys_for_new_spec_kinds(label):
    spec, expected = GOLDEN_KEYS[label]
    assert spec.cache_key() == expected


# -- params field: hash compatibility ------------------------------------------------


def test_empty_params_is_absent_from_the_hashed_payload():
    spec = RunSpec(config="4D-2C", workload="pagerank", size="tiny")
    assert "params" not in spec.to_json_dict()
    # non-empty params does appear (and in canonical form)
    sized = RunSpec(config="4D-2C", workload="apsp", params="n=24,block=12")
    assert sized.to_json_dict()["params"] == "block=12,n=24"


def test_legacy_spec_dicts_without_params_still_reconstruct():
    spec = RunSpec(config="4D-2C", workload="kmeans", size="tiny")
    legacy_payload = spec.to_json_dict()
    assert "params" not in legacy_payload  # what pre-params records hold
    rebuilt = RunSpec(**legacy_payload)
    assert rebuilt == spec
    assert rebuilt.cache_key() == spec.cache_key()


def test_params_canonicalization_makes_equal_overrides_hash_equal():
    a = RunSpec(config="4D-2C", workload="apsp", params="n=60, block=12")
    b = RunSpec(config="4D-2C", workload="apsp", params="block=12,n=60")
    assert a.params == b.params == "block=12,n=60"
    assert a.cache_key() == b.cache_key()


# -- parse_params --------------------------------------------------------------------


def test_parse_params_coerces_int_float_string():
    assert parse_params("n=48,density=0.25,order=col_first") == {
        "n": 48,
        "density": 0.25,
        "order": "col_first",
    }


def test_parse_params_rejects_malformed_and_duplicate_pairs():
    with pytest.raises(ConfigError):
        parse_params("n48")  # no separator
    with pytest.raises(ConfigError):
        parse_params("=48")  # empty key
    with pytest.raises(ConfigError):
        parse_params("n=48,n=60")  # duplicate


def test_spec_rejects_bad_params_at_construction():
    with pytest.raises(ConfigError):
        RunSpec(config="4D-2C", workload="apsp", params="n:48")


def test_unknown_override_key_fails_at_workload_build():
    spec = RunSpec(
        config="4D-2C", workload="apsp", size="tiny", params="edges=9"
    )
    with pytest.raises(ConfigError):
        execute_spec(spec)


def test_params_on_non_parameterized_workloads_fail_loudly():
    for workload in ("pagerank", "uniform_random"):
        spec = RunSpec(
            config="4D-2C", workload=workload, size="tiny", params="n=48"
        )
        with pytest.raises(ConfigError):
            execute_spec(spec)


# -- stat suffix matching: the dlrm.*/apsp.* aliasing regression ---------------------


def test_sum_suffix_never_aliases_across_namespaces():
    stats = StatRegistry()
    stats.add("dimm0.apsp.bytes", 100.0)
    stats.add("dimm1.apsp.bytes", 10.0)
    stats.add("dimm0.sp.bytes", 1.0)
    # whole-component matching: "sp.bytes" must not absorb "apsp.bytes"
    assert stats.sum_suffix("sp.bytes") == 1.0
    assert stats.sum_suffix("apsp.bytes") == 110.0
    # exact key (no scope prefix) still matches itself
    stats.add("apsp.bytes", 1000.0)
    assert stats.sum_suffix("apsp.bytes") == 1110.0


def test_histograms_suffix_uses_whole_component_matching():
    stats = StatRegistry()
    stats.histogram("dimm0.core0.dlrm.batch_ps").record(5.0)
    stats.histogram("dimm1.core0.dlrm.batch_ps").record(7.0)
    stats.histogram("dimm0.core0.rm.batch_ps").record(11.0)
    matched = stats.histograms_suffix("dlrm.batch_ps")
    assert sorted(matched) == [
        "dimm0.core0.dlrm.batch_ps",
        "dimm1.core0.dlrm.batch_ps",
    ]
    assert sum(h.count for h in matched.values()) == 2
