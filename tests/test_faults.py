"""Tests for the fault-injection subsystem (repro.faults) and the
degraded-mode routing / host-forwarding failover it drives."""

import pytest

from repro.config import SystemConfig
from repro.errors import FaultError
from repro.faults import (
    BridgeFault,
    DimmFault,
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkOutage,
    LinkWatchdog,
)
from repro.nmp.system import NMPSystem
from repro.sim.time import ns
from repro.workloads.microbench import BulkTransfer, UniformRandom


def _run(mechanism="dimm_link", faults=None, ops=20, seed=11):
    config = SystemConfig.named("8D-4C")
    system = NMPSystem(config, idc=mechanism, faults=faults)
    workload = UniformRandom(
        ops_per_thread=ops,
        remote_fraction=0.6,
        write_fraction=0.3,
        nbytes=512,
        seed=seed,
    )
    return system.run(workload.thread_factories(32, 8))


# -- watchdog ----------------------------------------------------------------------


def test_watchdog_declares_dead_after_consecutive_timeouts():
    watchdog = LinkWatchdog(threshold=3)
    declared = []
    watchdog.on_dead = declared.append
    assert not watchdog.report_timeout((0, 1))
    assert not watchdog.report_timeout((0, 1))
    assert watchdog.report_timeout((0, 1))
    assert declared == [(0, 1)]
    assert watchdog.is_dead((0, 1))
    # further timeouts on a dead link don't re-declare
    assert not watchdog.report_timeout((0, 1))


def test_watchdog_success_resets_consecutive_count():
    watchdog = LinkWatchdog(threshold=2)
    watchdog.report_timeout((0, 1))
    watchdog.report_success((0, 1))
    assert watchdog.timeouts((0, 1)) == 0
    assert not watchdog.report_timeout((0, 1))
    assert not watchdog.is_dead((0, 1))


def test_watchdog_reset_revives_link():
    watchdog = LinkWatchdog(threshold=1)
    watchdog.report_timeout((2, 3))
    assert watchdog.is_dead((2, 3))
    watchdog.reset((2, 3))
    assert not watchdog.is_dead((2, 3))


def test_watchdog_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        LinkWatchdog(threshold=0)


# -- schedule validation -----------------------------------------------------------


def test_schedule_sorts_faults_by_time():
    schedule = FaultSchedule(
        [
            LinkDown(time_ps=ns(500), dimm_a=1, dimm_b=2),
            LinkDown(time_ps=ns(100), dimm_a=0, dimm_b=1),
        ]
    )
    assert [f.time_ps for f in schedule] == [ns(100), ns(500)]
    assert len(schedule) == 2 and bool(schedule)


def test_schedule_rejects_negative_time_and_self_links():
    with pytest.raises(FaultError):
        FaultSchedule([LinkDown(time_ps=-1, dimm_a=0, dimm_b=1)])
    with pytest.raises(FaultError):
        FaultSchedule([LinkDown(time_ps=0, dimm_a=2, dimm_b=2)])


def test_outage_needs_positive_duration():
    with pytest.raises(FaultError):
        FaultSchedule([LinkOutage(time_ps=0, dimm_a=0, dimm_b=1, duration_ps=0)])


def test_degrade_fraction_must_be_in_unit_interval():
    for fraction in (0.0, -0.5, 1.5):
        with pytest.raises(FaultError):
            FaultSchedule(
                [LinkDegrade(time_ps=0, dimm_a=0, dimm_b=1, fraction=fraction)]
            )


def test_merged_schedules_combine_and_resort():
    early = FaultSchedule([LinkDown(time_ps=ns(100), dimm_a=0, dimm_b=1)])
    late = FaultSchedule([LinkDown(time_ps=ns(50), dimm_a=1, dimm_b=2)])
    merged = early.merged(late)
    assert [f.time_ps for f in merged] == [ns(50), ns(100)]


def test_cross_group_link_rejected_at_install():
    # 8D-4C groups are [0..3] and [4..7]: no bridge link crosses 3<->4
    faults = FaultSchedule([LinkDown(time_ps=0, dimm_a=3, dimm_b=4)])
    with pytest.raises(FaultError):
        NMPSystem(SystemConfig.named("8D-4C"), idc="dimm_link", faults=faults)


def test_non_adjacent_link_rejected_at_install():
    # half_ring wires 0-1-2-3; DIMMs 0 and 2 share no link
    faults = FaultSchedule([LinkDown(time_ps=0, dimm_a=0, dimm_b=2)])
    with pytest.raises(FaultError):
        NMPSystem(SystemConfig.named("8D-4C"), idc="dimm_link", faults=faults)


def test_unknown_group_rejected_at_install():
    faults = FaultSchedule([BridgeFault(time_ps=0, group=5)])
    with pytest.raises(FaultError):
        NMPSystem(SystemConfig.named("8D-4C"), idc="dimm_link", faults=faults)


def test_install_is_noop_on_bridgeless_mechanisms():
    faults = FaultSchedule([LinkDown(time_ps=0, dimm_a=0, dimm_b=1)])
    system = NMPSystem(SystemConfig.named("8D-4C"), idc="mcn", faults=faults)
    assert system.faults is None


# -- degraded-mode runs ------------------------------------------------------------


def test_mid_run_link_failure_completes_via_host_forwarding():
    faults = FaultSchedule([LinkDown(time_ps=ns(300), dimm_a=0, dimm_b=1)])
    result = _run(faults=faults)
    clean = _run()
    # the run finishes, detects the dead link, and escalates to the host
    assert result.counter("fault.links_down") == 1
    assert result.counter("dl.ack_timeouts") > 0
    assert result.counter("dl.links_marked_down") == 1
    assert result.counter("dl.rerouted_to_host") > 0
    assert result.counter("dl.rerouted_bytes") > 0
    assert 0.0 < result.counter("dl.link_availability_min") < 1.0
    assert clean.counter("dl.link_availability_min") == 1.0
    assert result.time_ps > clean.time_ps  # detection + failover cost time


def test_link_outage_is_restored():
    faults = FaultSchedule(
        [LinkOutage(time_ps=ns(300), dimm_a=0, dimm_b=1, duration_ps=ns(1500))]
    )
    result = _run(faults=faults)
    assert result.counter("fault.links_down") == 1
    assert result.counter("fault.links_restored") == 1
    assert result.counter("dl.link_availability_min") < 1.0


def test_link_degrade_slows_bulk_transfer():
    def bulk(faults):
        config = SystemConfig.named("8D-4C")
        system = NMPSystem(config, idc="dimm_link", faults=faults)
        workload = BulkTransfer(total_bytes=1 << 16, chunk_bytes=4096)
        return system.run(workload.thread_factories(1, 8))

    degraded = bulk(
        FaultSchedule([LinkDegrade(time_ps=0, dimm_a=0, dimm_b=1, fraction=0.25)])
    )
    clean = bulk(None)
    assert degraded.counter("fault.links_degraded") == 1
    assert degraded.time_ps > clean.time_ps


def test_dimm_fault_kills_every_adjacent_link():
    # DIMM 1 sits mid-chain (0-1-2-3): both its links die
    faults = FaultSchedule([DimmFault(time_ps=ns(300), dimm=1)])
    result = _run(faults=faults)
    assert result.counter("fault.dimms_failed") == 1
    assert result.counter("fault.links_down") == 2
    assert result.counter("dl.rerouted_to_host") > 0


def test_bridge_fault_kills_the_whole_group():
    faults = FaultSchedule([BridgeFault(time_ps=ns(300), group=0)])
    result = _run(faults=faults)
    assert result.counter("fault.bridges_failed") == 1
    assert result.counter("fault.links_down") == 3  # half_ring over 4 DIMMs
    assert result.counter("dl.rerouted_to_host") > 0


def test_total_bridge_loss_still_completes():
    # every link of both groups dies: all intra traffic must fail over
    faults = FaultSchedule(
        [BridgeFault(time_ps=ns(300), group=0), BridgeFault(time_ps=ns(300), group=1)]
    )
    result = _run(faults=faults)
    assert result.counter("fault.links_down") == 6
    assert result.counter("dl.rerouted_to_host") > 0
    assert result.time_ps > 0


def test_degraded_runs_stay_deterministic():
    faults = FaultSchedule([DimmFault(time_ps=ns(300), dimm=1)])
    first = _run(faults=faults)
    second = _run(
        faults=FaultSchedule([DimmFault(time_ps=ns(300), dimm=1)])
    )
    assert first.time_ps == second.time_ps
    assert first.counter("dl.rerouted_to_host") == second.counter(
        "dl.rerouted_to_host"
    )


def test_resilience_sweep_shape():
    from repro.experiments.resilience import run

    rows = run(size="tiny", fractions=(0.0, 1.0), mechanisms=("mcn", "dimm_link"))
    mcn = [r["idc_gbps"] for r in rows if r["mechanism"] == "mcn"]
    dl = [r["idc_gbps"] for r in rows if r["mechanism"] == "dimm_link"]
    assert mcn[0] == pytest.approx(mcn[1])  # no bridge: faults don't apply
    assert dl[1] < dl[0]  # injected failures cost bandwidth...
    assert dl[1] > 0  # ...but host failover keeps it nonzero


# -- spec-driven link-down schedules -------------------------------------------------


def test_tiny_fraction_still_kills_at_least_one_link_per_group():
    """round(fraction * edges) == 0 must not silently skip injection."""
    from repro.experiments.runner import link_down_schedule

    config = SystemConfig.named("8D-4C")  # 3 bridge links per group
    schedule = link_down_schedule(config, 0.05)  # round(0.15) == 0
    assert len(schedule.faults) == len(config.groups)  # one kill per group
    assert all(isinstance(fault, LinkDown) for fault in schedule.faults)


def test_zero_fraction_installs_no_faults():
    from repro.experiments.runner import link_down_schedule

    config = SystemConfig.named("8D-4C")
    assert len(link_down_schedule(config, 0.0).faults) == 0


def test_full_fraction_kills_every_link():
    from repro.experiments.runner import link_down_schedule

    config = SystemConfig.named("8D-4C")
    assert len(link_down_schedule(config, 1.0).faults) == 6


def test_tiny_fraction_sweep_point_actually_degrades():
    """The resilience sweep's smallest nonzero point measures a real
    degraded run, not a silent replay of the fault-free one."""
    from repro.experiments.runner import RunSpec, execute_spec

    base = dict(
        config="8D-4C", workload="uniform_random", size="tiny", seed=11
    )
    clean = execute_spec(RunSpec(**base, fault_fraction=0.0))
    faulted = execute_spec(RunSpec(**base, fault_fraction=0.05))
    assert clean.counter("fault.links_down") == 0
    assert faulted.counter("fault.links_down") >= 1
