"""Round-trip property suite for RunResult / StatRegistry / Histogram
JSON serialization (seeded-random generation, no external deps)."""

import json
import random

import pytest

from repro.experiments.runner import RunSpec, execute_spec
from repro.nmp.results import RunResult
from repro.sim.stats import Histogram, StatRegistry

NAME_PARTS = ("idc", "dl", "core", "dram", "fault", "bus", "sync")


def random_registry(rng: random.Random) -> StatRegistry:
    stats = StatRegistry()
    for _ in range(rng.randint(0, 30)):
        name = ".".join(rng.sample(NAME_PARTS, rng.randint(1, 3)))
        value = rng.choice(
            [
                rng.uniform(-1e12, 1e12),
                float(rng.randint(-(2**48), 2**48)),
                0.0,
                rng.random(),
            ]
        )
        stats.add(f"{name}.c{rng.randint(0, 5)}", value)
    for _ in range(rng.randint(0, 5)):
        hist = stats.histogram(f"{rng.choice(NAME_PARTS)}.h{rng.randint(0, 3)}")
        for _ in range(rng.randint(0, 50)):
            hist.record(
                rng.choice(
                    [
                        rng.uniform(-100.0, 1e9),
                        0.0,
                        rng.random(),  # (0, 1): the log2-bucket edge case
                        float(rng.randint(1, 2**40)),
                    ]
                )
            )
    return stats


def random_result(rng: random.Random) -> RunResult:
    threads = rng.randint(1, 64)
    ends = sorted(rng.randint(0, 2**50) for _ in range(threads))
    return RunResult(
        system_name=rng.choice(["4D-2C", "16D-8C", "cpu-16D-8C"]),
        mechanism=rng.choice(["cpu", "mcn", "aim", "abc", "dimm_link"]),
        workload=rng.choice(["pagerank", "bfs", "uniform_random"]),
        time_ps=ends[-1],
        thread_end_ps=ends,
        stats=random_registry(rng),
        bus_occupancy=[rng.random() for _ in range(rng.randint(0, 8))],
        profile_ps=rng.randint(0, 2**40),
        polling=rng.choice(["none", "baseline", "proxy", "proxy+interrupt"]),
    )


@pytest.mark.parametrize("seed", range(20))
def test_run_result_round_trips_through_json(seed):
    result = random_result(random.Random(seed))
    wire = json.dumps(result.to_json_dict(), sort_keys=True)
    rebuilt = RunResult.from_json_dict(json.loads(wire))
    assert rebuilt == result
    # and the round trip is a fixed point: serializing again is identical
    assert json.dumps(rebuilt.to_json_dict(), sort_keys=True) == wire


@pytest.mark.parametrize("seed", range(10))
def test_stat_registry_round_trips_through_json(seed):
    stats = random_registry(random.Random(1000 + seed))
    rebuilt = StatRegistry.from_json_dict(json.loads(json.dumps(stats.to_json_dict())))
    assert rebuilt == stats
    # aggregate views must survive: the experiments read these off caches
    assert rebuilt.sum_suffix("c0") == stats.sum_suffix("c0")
    assert rebuilt.counters("idc") == stats.counters("idc")


def test_histogram_round_trip_preserves_buckets_and_extrema():
    hist = Histogram("dl.latency")
    for value in (-3.0, 0.0, 0.25, 0.5, 1.0, 7.0, 1024.0):
        hist.record(value)
    rebuilt = Histogram.from_json_dict(json.loads(json.dumps(hist.to_json_dict())))
    assert rebuilt == hist
    assert rebuilt.buckets() == hist.buckets()
    assert (rebuilt.min, rebuilt.max, rebuilt.mean) == (hist.min, hist.max, hist.mean)


def test_empty_histogram_round_trips():
    hist = Histogram("empty")
    rebuilt = Histogram.from_json_dict(json.loads(json.dumps(hist.to_json_dict())))
    assert rebuilt == hist
    assert rebuilt.min is None and rebuilt.max is None and rebuilt.count == 0


def test_real_simulation_result_round_trips():
    # a genuine tiny run: covers the actual stat names, histograms,
    # profile_ps (DL-opt charges it) and bus_occupancy the sim produces
    result = execute_spec(
        RunSpec(config="4D-2C", workload="pagerank", size="tiny", kind="optimized")
    )
    assert result.profile_ps > 0
    assert result.bus_occupancy
    rebuilt = RunResult.from_json_dict(
        json.loads(json.dumps(result.to_json_dict(), sort_keys=True))
    )
    assert rebuilt == result
    assert rebuilt.traffic_breakdown == result.traffic_breakdown
    assert rebuilt.mean_bus_occupancy == result.mean_bus_occupancy
