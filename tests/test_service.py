"""Service-layer suite: admission control, deadlines, idempotent
submits, graceful drain, and stream resume for ``dimmlink-repro serve``.

Every test runs a real :class:`~repro.service.server.ReproService` on an
ephemeral port (via :class:`ServiceThread`) and drives it with the real
:class:`~repro.service.client.ServiceClient` — no mocked sockets, so the
framing, retry, and flow-control paths are the ones production runs.
"""

import contextlib
import json
import threading
import time

import pytest

from repro.fabric import faultpoints
from repro.fabric.broker import BrokerConfig
from repro.fabric.worker import Worker
from repro.service import protocol
from repro.service.client import ServiceBusy, ServiceClient
from repro.service.server import ReproService, ServiceThread, grid_id_for
from tests.test_fabric import grid
from tests.test_results_cache import fake_result


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.reset()
    yield
    faultpoints.reset()


@contextlib.contextmanager
def serve(tmp_path, **service_kwargs):
    service_kwargs.setdefault(
        "config", BrokerConfig(lease_ttl_s=5.0, backoff_s=0.01)
    )
    service_kwargs.setdefault("durable", False)
    service_kwargs.setdefault("poll_interval_s", 0.02)
    service = ReproService(tmp_path / "broker", **service_kwargs)
    thread = ServiceThread(service).start()
    try:
        yield service, thread
    finally:
        thread.drain(timeout_s=30.0)


def drain_with_worker(service, specs):
    """Run the grid to done through the broker (same-process worker)."""
    worker = Worker(service.broker, execute=fake_result, poll_interval_s=0.01)
    worker.run()
    return worker


# -- admission control ---------------------------------------------------------------


def test_submit_beyond_live_bound_is_structured_busy(tmp_path):
    with serve(tmp_path, max_live_specs=6) as (service, thread):
        client = ServiceClient(thread.address)
        first = grid(3)
        second = [g for g in grid(6) if g not in first]  # seeds 3..5
        third = [
            type(first[0])(config="4D-2C", workload="pagerank",
                           size="tiny", seed=seed)
            for seed in (100, 101, 102)
        ]
        assert client.submit(first)["report"]["enqueued"] == 3
        assert client.submit(second)["report"]["enqueued"] == 3  # at bound
        with pytest.raises(ServiceBusy) as excinfo:
            client.submit(third)
        assert excinfo.value.code == protocol.BUSY
        assert excinfo.value.reply["live"] == 6
        assert excinfo.value.reply["limit"] == 6
        assert float(excinfo.value.reply["retry_after_s"]) > 0
        # the rejected grid journaled NOTHING: no partial admission
        assert client.counts()["total"] == 6
        client.close()


def test_submit_storm_sheds_load_without_dropping_accepted_work(tmp_path):
    """A concurrent submit storm beyond the admission bound: every
    accepted grid is fully journaled, every rejection is a structured
    BUSY, and accepted + rejected == storm size (nothing vanished)."""
    storm, per_grid = 10, 2
    with serve(tmp_path, max_live_specs=8) as (service, thread):
        outcomes = []

        def submitter(index):
            specs = [
                type(grid(1)[0])(config="4D-2C", workload="pagerank",
                                 size="tiny", seed=1000 * index + i)
                for i in range(per_grid)
            ]
            client = ServiceClient(thread.address, busy_budget_s=0.0)
            try:
                reply = client.submit(specs)
                outcomes.append(("accepted", reply["report"]["enqueued"]))
            except ServiceBusy as busy:
                outcomes.append(("busy", busy.code))
            finally:
                client.close()

        threads = [
            threading.Thread(target=submitter, args=(index,))
            for index in range(storm)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)

        assert len(outcomes) == storm
        accepted = [o for o in outcomes if o[0] == "accepted"]
        rejected = [o for o in outcomes if o[0] == "busy"]
        assert rejected, "the storm must overrun the admission bound"
        assert all(code == protocol.BUSY for _, code in rejected)
        # accepted work is never dropped: every admitted spec is live
        probe = ServiceClient(thread.address)
        total = probe.counts()["total"]
        probe.close()
        assert total == sum(count for _, count in accepted)
        assert total <= 8 + per_grid  # bound honored (one grid of slack)


def test_submit_waiting_line_bound_rejects_immediately(tmp_path):
    with serve(tmp_path, max_submit_waiters=0) as (service, thread):
        client = ServiceClient(thread.address, busy_budget_s=0.0)
        with pytest.raises(ServiceBusy):
            client.submit(grid(1))
        client.close()


def test_busy_budget_waits_out_flow_control(tmp_path):
    """A client given a busy budget retries after ``retry_after_s`` and
    lands the submit once capacity frees up."""
    with serve(tmp_path, max_live_specs=2) as (service, thread):
        client = ServiceClient(thread.address, busy_budget_s=10.0)
        blockers = grid(2)
        client.submit(blockers)
        free = threading.Timer(
            0.3, lambda: drain_with_worker(service, blockers)
        )
        free.start()
        try:
            late = [
                type(blockers[0])(config="4D-2C", workload="pagerank",
                                  size="tiny", seed=77)
            ]
            reply = client.submit(late)  # BUSY at first, admitted after
            assert reply["report"]["enqueued"] == 1
        finally:
            free.join()
            client.close()


# -- idempotency ---------------------------------------------------------------------


def test_resubmit_never_double_enqueues(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        specs = grid(4)
        first = client.submit(specs)["report"]
        assert first["enqueued"] == 4
        again = client.submit(specs)["report"]
        assert again["enqueued"] == 0
        assert again["inflight"] == 4
        assert client.counts()["total"] == 4
        # and after completion a resubmit reports done, still no growth
        drain_with_worker(service, specs)
        done = client.submit(specs)["report"]
        assert done["enqueued"] == 0
        assert done["done"] + done["cached"] == 4
        assert client.counts()["total"] == 4
        client.close()


def test_client_retry_after_torn_reply_does_not_double_enqueue(tmp_path):
    """The ambiguous-failure case idempotency exists for: the submit is
    journaled but the reply frame never arrives (server drops the
    connection mid-reply); the client's automatic retry must fold into
    the already-journaled grid."""
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(
            thread.address, retries=4, backoff_s=0.01, backoff_cap_s=0.05
        )
        specs = grid(3)
        reply = client.submit(specs)
        assert reply["report"]["enqueued"] == 3
        client.close()  # the reply "was lost": retry on a fresh connection
        retry = client.submit(specs)["report"]
        assert retry["enqueued"] == 0 and retry["inflight"] == 3
        assert client.counts()["total"] == 3
        client.close()


# -- deadlines -----------------------------------------------------------------------


def test_deadline_bounds_the_lease_ttl_at_claim(tmp_path):
    """config TTL is 5s; a 0.5s request deadline must shorten the lease
    so the farm never holds work for a client that gave up."""
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        spec = grid(1)[0]
        client.submit([spec], deadline_s=0.5)
        reply = client.call("claim", worker="w-deadline")
        assert reply["record"]["key"] == spec.cache_key()
        assert reply["lease_ttl_s"] is not None
        assert float(reply["lease_ttl_s"]) <= 0.5
        holder, expires = service.broker.leases.holder(spec.cache_key())
        assert holder == "w-deadline"
        assert expires - time.time() <= 0.6  # not the 5s config TTL
        client.close()


def test_lapsed_deadline_quarantines_pending_spec(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        specs = grid(2)
        client.submit(specs, deadline_s=0.1)
        time.sleep(0.25)
        # the next claim sweeps overdue pendings into quarantine
        assert client.call("claim", worker="late")["record"] is None
        counts = client.counts()
        assert counts["dead"] == 2 and counts["pending"] == 0
        records = service.broker.records()
        for spec in specs:
            assert "deadline" in records[spec.cache_key()].error
        client.close()


def test_renew_respects_deadline_bound(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        spec = grid(1)[0]
        key = spec.cache_key()
        client.submit([spec], deadline_s=0.8)
        client.call("claim", worker="w1")
        assert client.call("renew", key=key, worker="w1")["renewed"] is True
        _, expires = service.broker.leases.holder(key)
        assert expires - time.time() <= 0.9
        client.close()


# -- graceful drain ------------------------------------------------------------------


def test_drain_persists_manifest_and_holds_no_leases(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        specs = grid(3)
        reply = client.submit(specs, deadline_s=60.0)
        grid_id = reply["grid_id"]
        client.close()
        thread.drain(timeout_s=30.0)

        manifest = json.loads(service.manifest_path.read_text())
        assert manifest["drained"] is True
        assert grid_id in manifest["grids"]
        assert sorted(manifest["grids"][grid_id]["keys"]) == sorted(
            spec.cache_key() for spec in specs
        )
        assert set(manifest["deadlines"]) == {s.cache_key() for s in specs}
        assert service.broker.leases.live_count() == 0  # zero orphans
        # the journal is intact: a successor serves the same queue
        assert service.broker.counts()["pending"] == 3


def test_draining_server_rejects_submits_and_stops_handing_out_work(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address, busy_budget_s=0.0)
        client.submit(grid(2))
        service._draining = True  # drain signalled, listener still up
        with pytest.raises(ServiceBusy) as excinfo:
            client.submit(grid(4))
        assert excinfo.value.code == protocol.DRAINING
        claim = client.call("claim", worker="late")
        assert claim["record"] is None and claim["draining"] is True
        service._draining = False  # let the fixture drain cleanly
        client.close()


def test_successor_restores_manifest_grids(tmp_path):
    specs = grid(3)
    keys = [spec.cache_key() for spec in specs]
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        client.submit(specs, deadline_s=120.0)
        drain_with_worker(service, specs)
        list(client.stream(keys=keys))
        client.close()
    # fixture drained; a successor on the same root resumes the grid
    successor = ReproService(tmp_path / "broker", durable=False)
    grid_id = grid_id_for(keys)
    assert grid_id in successor._grids
    restored = successor._grids[grid_id]
    assert sorted(restored.keys) == sorted(keys)
    assert restored.base_seq > 0  # numbering continues, history is gone
    assert set(successor._deadlines) == set(keys)
    successor._journal_owner.shutdown(wait=False)


# -- progress streams ----------------------------------------------------------------


def test_stream_replays_snapshot_specs_and_drained(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        specs = grid(3)
        keys = [spec.cache_key() for spec in specs]
        client.submit(specs)
        drain_with_worker(service, specs)
        events = list(client.stream(keys=keys))
        kinds = [event["type"] for event in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "drained"
        assert kinds.count("spec") == 3
        assert all(
            event["state"] == "done"
            for event in events if event["type"] == "spec"
        )
        assert events[-1]["counts"]["done"] == 3
        client.close()


def test_stream_resume_from_seq_skips_acked_events(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        specs = grid(4)
        keys = [spec.cache_key() for spec in specs]
        client.submit(specs)
        drain_with_worker(service, specs)
        full = list(client.stream(keys=keys))
        client.close()
        resumed = ServiceClient(thread.address)
        tail = list(resumed.stream(keys=keys, from_seq=3))
        assert tail == full[3:]  # byte-for-byte the unacked suffix
        resumed.close()


def test_stream_interrupted_mid_grid_resumes_without_loss(tmp_path):
    """Cut the subscriber's socket mid-stream; the client reconnects
    with ``from_seq`` and the concatenated event list is exactly what an
    uninterrupted subscriber sees — no duplicates, no gaps."""
    with serve(tmp_path) as (service, thread):
        submitter = ServiceClient(thread.address)
        specs = grid(5)
        keys = [spec.cache_key() for spec in specs]
        submitter.submit(specs)

        worker_thread = threading.Thread(
            target=drain_with_worker, args=(service, specs)
        )
        client = ServiceClient(
            thread.address, backoff_s=0.01, backoff_cap_s=0.05
        )
        events = []
        cut = False
        worker_thread.start()
        try:
            for event in client.stream(keys=keys):
                events.append(event)
                if not cut and len(events) >= 2:
                    cut = True
                    client.close()  # rip the socket out mid-stream
        finally:
            worker_thread.join(30.0)
        assert client.reconnects >= 1  # the cut really happened
        reference = ServiceClient(thread.address)
        replay = list(reference.stream(keys=keys))
        assert events == replay
        reference.close()
        submitter.close()


def test_subscriber_behind_a_restart_gets_reset_then_tail(tmp_path):
    """A subscriber resuming against a restarted server (its event log
    is gone) receives an explicit reset with a counts snapshot, then
    consistent per-spec events — idempotent reconciliation by key."""
    specs = grid(3)
    keys = [spec.cache_key() for spec in specs]
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        client.submit(specs)
        drain_with_worker(service, specs)
        list(client.stream(keys=keys))  # history exists pre-restart
        client.close()
    with serve(tmp_path) as (successor, thread2):
        late = ServiceClient(thread2.address)
        events = list(late.stream(keys=keys, from_seq=0))
        assert events[0]["type"] == "reset"
        assert events[0]["counts"]["done"] == 3
        spec_events = [e for e in events if e["type"] == "spec"]
        assert {e["key"] for e in spec_events} == set(keys)
        assert events[-1]["type"] == "drained"
        late.close()


# -- status --------------------------------------------------------------------------


def test_status_reports_counts_leases_and_throughput(tmp_path):
    with serve(tmp_path) as (service, thread):
        client = ServiceClient(thread.address)
        specs = grid(2)
        client.submit(specs)
        status = client.status()
        assert status["counts"]["pending"] == 2
        assert status["draining"] is False
        assert status["grids"] == 1
        drain_with_worker(service, specs)
        list(client.stream(keys=[s.cache_key() for s in specs]))
        status = client.status()
        assert status["counts"]["done"] == 2
        assert status["throughput_per_s"] >= 0.0
        client.close()
