"""Supervised-sweep suite: incremental checkpointing, retry/quarantine,
per-spec timeouts with engine diagnosis, pool respawn, serial
degradation, and KeyboardInterrupt flush semantics."""

import multiprocessing
import os
import time

import pytest

from repro.errors import SweepExecutionError
from repro.experiments.runner import DeadLetter, RunSpec, SweepRunner
from repro.results_cache import ResultsCache
from repro.sim.engine import Simulator
from tests.test_results_cache import fake_result

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

BAD_SEED = 666


def grid(count: int, bad_at=None):
    """``count`` distinct specs; position ``bad_at`` gets the bad seed."""
    return [
        RunSpec(
            config="4D-2C",
            workload="pagerank",
            size="tiny",
            seed=BAD_SEED if index == bad_at else index,
        )
        for index in range(count)
    ]


# -- module-level execute hooks (picklable for the process pool) ---------------------


def ok_execute(spec):
    return fake_result(spec)


def crashy_execute(spec):
    if spec.seed == BAD_SEED:
        raise RuntimeError("injected crash")
    return fake_result(spec)


def worker_killer_execute(spec):
    if spec.seed == BAD_SEED:
        time.sleep(0.2)  # let innocent neighbours finish first
        os._exit(17)  # kills the worker -> BrokenProcessPool in the parent
    return fake_result(spec)


def worker_only_killer_execute(spec):
    if spec.seed == BAD_SEED:
        if multiprocessing.parent_process() is not None:
            os._exit(17)  # in a pool worker: die hard
        raise RuntimeError("injected crash (serial fallback)")
    return fake_result(spec)


def sleepy_execute(spec):
    if spec.seed == BAD_SEED:
        time.sleep(30.0)  # hang *outside* the simulator: SIGALRM backstop
    return fake_result(spec)


def stuck_sim_execute(spec):
    if spec.seed == BAD_SEED:
        sim = Simulator()

        def spin():
            while True:
                yield 1  # livelock: the event queue never drains

        sim.process(spin(), name="spinner")
        sim.run()  # the armed StallWatchdog must cut this off
    return fake_result(spec)


def interrupt_execute(spec):
    if spec.seed == BAD_SEED:
        raise KeyboardInterrupt()
    return fake_result(spec)


class FlakyExecute:
    """Fails the bad spec ``failures`` times, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, spec):
        if spec.seed == BAD_SEED:
            self.calls += 1
            if self.calls <= self.failures:
                raise RuntimeError(f"transient failure #{self.calls}")
        return fake_result(spec)


# -- incremental checkpointing (satellite regression) --------------------------------


def test_partial_batch_keeps_finished_results(tmp_path):
    """Killing the Nth spec must not lose specs 1..N-1 from the cache."""
    specs = grid(5, bad_at=4)
    runner = SweepRunner(
        cache=ResultsCache(tmp_path), execute=crashy_execute, retries=0
    )
    with pytest.raises(SweepExecutionError) as excinfo:
        runner.run(specs)
    assert len(excinfo.value.dead_letters) == 1
    assert excinfo.value.dead_letters[0].spec.seed == BAD_SEED

    cache = ResultsCache(tmp_path)
    assert len(cache) == 4
    for spec in specs[:4]:
        assert cache.get(spec.cache_key()) is not None


def test_results_checkpoint_the_moment_each_completes(tmp_path):
    """Every completed spec is on disk before the next one starts."""
    cache = ResultsCache(tmp_path)
    seen_counts = []

    def checkpoint_spy(spec):
        seen_counts.append(len(cache))
        return fake_result(spec)

    SweepRunner(cache=cache, execute=checkpoint_spy).run(grid(4))
    assert seen_counts == [0, 1, 2, 3]


def test_keyboard_interrupt_flushes_completed_results(tmp_path):
    specs = grid(4, bad_at=2)
    runner = SweepRunner(cache=ResultsCache(tmp_path), execute=interrupt_execute)
    with pytest.raises(KeyboardInterrupt):
        runner.run(specs)
    cache = ResultsCache(tmp_path)
    assert cache.get(specs[0].cache_key()) is not None
    assert cache.get(specs[1].cache_key()) is not None
    assert cache.get(specs[2].cache_key()) is None


# -- retry and quarantine ------------------------------------------------------------


def test_transient_failure_retries_until_success(tmp_path):
    execute = FlakyExecute(failures=2)
    runner = SweepRunner(
        cache=ResultsCache(tmp_path), execute=execute, retries=2
    )
    results = runner.run(grid(3, bad_at=1))
    assert all(result is not None for result in results)
    assert runner.dead_letters == []
    assert execute.calls == 3  # two failures + the success


def test_exhausted_retries_quarantine_without_aborting(tmp_path):
    specs = grid(5, bad_at=2)
    runner = SweepRunner(
        cache=ResultsCache(tmp_path),
        execute=crashy_execute,
        retries=1,
        strict=False,
    )
    results = runner.run(specs)
    assert results[2] is None
    assert all(results[i] is not None for i in (0, 1, 3, 4))
    assert len(runner.dead_letters) == 1
    letter = runner.dead_letters[0]
    assert isinstance(letter, DeadLetter)
    assert letter.attempts == 2  # initial + one retry
    assert "injected crash" in letter.error
    assert letter.spec.seed == BAD_SEED
    # all healthy specs were checkpointed despite the quarantine
    assert len(ResultsCache(tmp_path)) == 4


def test_duplicate_failing_specs_quarantine_once(tmp_path):
    bad = grid(1, bad_at=0)[0]
    runner = SweepRunner(
        cache=ResultsCache(tmp_path),
        execute=crashy_execute,
        retries=0,
        strict=False,
    )
    results = runner.run([bad, bad])
    assert results == [None, None]
    assert len(runner.dead_letters) == 1


def test_strict_error_reports_retry_counts():
    runner = SweepRunner(execute=crashy_execute, retries=0, use_cache=False)
    with pytest.raises(SweepExecutionError) as excinfo:
        runner.run(grid(2, bad_at=0))
    assert "quarantined" in str(excinfo.value)
    assert excinfo.value.dead_letters[0].attempts == 1


# -- per-spec wall-clock timeouts ----------------------------------------------------


def test_timeout_outside_simulator_hits_sigalrm_backstop(tmp_path):
    specs = grid(3, bad_at=1)
    runner = SweepRunner(
        cache=ResultsCache(tmp_path),
        execute=sleepy_execute,
        retries=0,
        spec_timeout=0.3,
        strict=False,
    )
    results = runner.run(specs)
    assert results[1] is None
    assert results[0] is not None and results[2] is not None
    assert len(runner.dead_letters) == 1
    assert "SpecTimeoutError" in runner.dead_letters[0].error


def test_timeout_inside_simulator_reports_blocked_processes(tmp_path):
    specs = grid(2, bad_at=1)
    runner = SweepRunner(
        cache=ResultsCache(tmp_path),
        execute=stuck_sim_execute,
        retries=0,
        spec_timeout=0.3,
        strict=False,
    )
    results = runner.run(specs)
    assert results[0] is not None and results[1] is None
    letter = runner.dead_letters[0]
    assert "SimStallError" in letter.error
    assert "stalled at" in letter.diagnosis
    assert "spinner" in letter.diagnosis  # names the hung process


# -- worker crashes: respawn and degradation -----------------------------------------


def test_worker_crash_respawns_pool_and_quarantines_only_the_killer(tmp_path):
    specs = grid(7, bad_at=3)
    runner = SweepRunner(
        jobs=2,
        cache=ResultsCache(tmp_path),
        execute=worker_killer_execute,
        retries=1,
        strict=False,
    )
    results = runner.run(specs)
    good = [i for i in range(7) if i != 3]
    assert all(results[i] is not None for i in good)
    assert results[3] is None
    assert [letter.spec.seed for letter in runner.dead_letters] == [BAD_SEED]
    assert "worker process died" in runner.dead_letters[0].error
    # the healthy six are all checkpointed for the next run
    cache = ResultsCache(tmp_path)
    for i in good:
        assert cache.get(specs[i].cache_key()) is not None


def test_repeated_pool_deaths_degrade_to_serial(tmp_path):
    specs = grid(5, bad_at=2)
    runner = SweepRunner(
        jobs=2,
        cache=ResultsCache(tmp_path),
        execute=worker_only_killer_execute,
        retries=1,
        strict=False,
        max_pool_respawns=0,  # first breakage forces the serial fallback
    )
    results = runner.run(specs)
    assert results[2] is None
    assert all(results[i] is not None for i in (0, 1, 3, 4))
    assert len(runner.dead_letters) == 1
    # the fallback ran the killer in-process, where it fails softly
    assert "injected crash (serial fallback)" in runner.dead_letters[0].error


# -- equivalence guarantees stay intact ----------------------------------------------


def test_fault_free_supervised_run_matches_unsupervised(tmp_path):
    import json

    specs = grid(4)
    plain = SweepRunner(execute=ok_execute, use_cache=False).run(specs)
    supervised = SweepRunner(
        execute=ok_execute,
        use_cache=False,
        retries=3,
        spec_timeout=60.0,
    ).run(specs)
    assert json.dumps([r.to_json_dict() for r in plain], sort_keys=True) == (
        json.dumps([r.to_json_dict() for r in supervised], sort_keys=True)
    )


def test_validation_rejects_bad_supervision_parameters():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        SweepRunner(retries=-1)
    with pytest.raises(ConfigError):
        SweepRunner(spec_timeout=0.0)


def slow_interrupt_execute(spec):
    if spec.seed == BAD_SEED:
        time.sleep(0.6)  # healthy neighbours finish and checkpoint first
        raise KeyboardInterrupt()
    return fake_result(spec)


def test_keyboard_interrupt_in_pool_flushes_completed_results(tmp_path):
    """Ctrl-C during a ``--jobs N`` sweep keeps everything that finished
    before the interrupt: the pool stops handing out work, but completed
    checkpoints are already on disk for the resume."""
    specs = grid(6, bad_at=5)
    runner = SweepRunner(
        jobs=2, cache=ResultsCache(tmp_path), execute=slow_interrupt_execute
    )
    with pytest.raises(KeyboardInterrupt):
        runner.run(specs)
    cache = ResultsCache(tmp_path)
    for spec in specs[:5]:
        assert cache.get(spec.cache_key()) is not None
    assert cache.get(specs[5].cache_key()) is None


# -- SIGALRM state restoration (satellite regression) --------------------------------


def test_supervised_call_restores_previous_sigalrm_handler_and_itimer():
    """An outer alarm (another supervisor, a test harness) must survive a
    supervised call: same handler installed, timer still counting."""
    import signal

    from repro.experiments.runner import supervised_call

    fired = []

    def outer_handler(signum, frame):
        fired.append(signum)

    previous_handler = signal.signal(signal.SIGALRM, outer_handler)
    signal.setitimer(signal.ITIMER_REAL, 60.0)
    try:
        assert supervised_call(ok_execute, grid(1)[0], 5.0) is not None
        assert signal.getsignal(signal.SIGALRM) is outer_handler
        delay, interval = signal.setitimer(signal.ITIMER_REAL, 0.0)
        assert 0.0 < delay <= 60.0  # the outer alarm is still armed
        assert interval == 0.0
        assert fired == []  # and it never fired early
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)


def test_supervised_call_without_prior_alarm_disarms_cleanly():
    import signal

    from repro.experiments.runner import supervised_call

    before = signal.getsignal(signal.SIGALRM)
    supervised_call(ok_execute, grid(1)[0], 5.0)
    assert signal.getsignal(signal.SIGALRM) == before
    delay, _interval = signal.setitimer(signal.ITIMER_REAL, 0.0)
    assert delay == 0.0  # no stray timer left ticking
