"""Tests for the HA/NA coarse-grained execution flow (repro.nmp.modes)."""

import pytest

from repro.config import SystemConfig
from repro.errors import SimulationError
from repro.nmp.modes import CACHE_FLUSH_PS, ExecutionFlow, Mode
from repro.nmp.system import NMPSystem
from repro.workloads.microbench import UniformRandom


def _flow(name="4D-2C"):
    return ExecutionFlow(NMPSystem(SystemConfig.named(name)))


def test_starts_in_host_access_mode():
    flow = _flow()
    assert flow.mode is Mode.HOST_ACCESS
    assert flow.offload_ps == 0


def test_mode_transitions_enforced():
    flow = _flow()
    flow.enter_na()
    assert flow.mode is Mode.NMP_ACCESS
    with pytest.raises(SimulationError):
        flow.enter_na()
    flow.exit_na()
    assert flow.mode is Mode.HOST_ACCESS
    with pytest.raises(SimulationError):
        flow.exit_na()


def test_staging_costs_time_proportional_to_bytes():
    small = _flow()
    small.enter_na(input_bytes_per_dimm=4096)
    big = _flow()
    big.enter_na(input_bytes_per_dimm=1 << 20)
    assert big.offload_ps > small.offload_ps


def test_exit_includes_cache_flush():
    flow = _flow()
    flow.enter_na()
    before = flow.offload_ps
    flow.exit_na()
    assert flow.offload_ps - before >= CACHE_FLUSH_PS


def test_full_offload_runs_kernel():
    flow = _flow("8D-4C")
    workload = UniformRandom(ops_per_thread=30, seed=4)
    result = flow.run_kernel(
        workload.thread_factories(32, 8),
        input_bytes_per_dimm=8192,
        result_bytes_per_dimm=4096,
        workload_name="uniform",
    )
    assert result.time_ps > 0
    assert flow.offload_ps > 0
    assert flow.mode is Mode.HOST_ACCESS


def test_staging_occupies_channels():
    flow = _flow()
    flow.enter_na(input_bytes_per_dimm=1 << 16)
    assert flow.system.stats.get("bus.data_bytes") == 4 * (1 << 16)
