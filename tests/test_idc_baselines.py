"""Tests for the baseline IDC mechanisms (MCN, AIM, ABC-DIMM)."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.idc import make_mechanism, mechanism_names, peak_bandwidth
from repro.nmp.system import NMPSystem


def _system(mech, name="4D-2C"):
    return NMPSystem(SystemConfig.named(name), idc=mech)


# -- factory ------------------------------------------------------------------

def test_mechanism_factory_names():
    assert set(mechanism_names()) == {"mcn", "aim", "abc", "dimm_link"}
    for name in mechanism_names():
        assert make_mechanism(name).name == name
    with pytest.raises(ConfigError):
        make_mechanism("quantum")


# -- MCN (CPU forwarding) --------------------------------------------------------

def test_mcn_read_round_trips_through_host():
    system = _system("mcn")
    done = []
    system.idc.remote_read(0, 1, 0, 256).add_callback(lambda ev: done.append(True))
    system.sim.run()
    assert done == [True]
    assert system.stats.get("fwd.ops") == 2  # request + data return
    assert system.stats.get("idc.forwarded_bytes") == 256


def test_mcn_write_single_forward():
    system = _system("mcn")
    system.idc.remote_write(0, 1, 0, 256)
    system.sim.run()
    assert system.stats.get("fwd.ops") == 1
    assert system.stats.get("dimm1.dram.write_bytes") == 256


def test_mcn_broadcast_writes_every_dimm():
    system = _system("mcn")
    system.idc.broadcast(0, 0, 128)
    system.sim.run()
    for dimm in range(1, 4):
        assert system.stats.get(f"dimm{dimm}.dram.write_bytes") == 128
    # broadcast payload crossed each destination's channel individually
    assert system.stats.get("idc.forwarded_bytes") == 3 * 128


def test_mcn_uses_both_channels_for_cross_channel_read():
    system = _system("mcn")
    system.idc.remote_read(0, 2, 0, 1024)  # dimm0 ch0, dimm2 ch1
    system.sim.run()
    assert system.stats.get("bus.fwd_bytes") > 2 * 1024  # both crossings


# -- AIM (dedicated bus) -----------------------------------------------------------

def test_aim_read_no_host_involvement():
    system = _system("aim")
    done = []
    system.idc.remote_read(0, 1, 0, 256).add_callback(lambda ev: done.append(True))
    system.sim.run()
    assert done == [True]
    assert system.stats.get("fwd.ops") == 0
    assert system.stats.get("bus.fwd_bytes") == 0
    assert system.stats.get("idc.dedicated_bus_bytes") > 256


def test_aim_bus_serialises_transfers():
    system = _system("aim")
    done = []
    for _ in range(2):
        system.idc.remote_write(0, 1, 0, 65536).add_callback(
            lambda ev: done.append(system.sim.now)
        )
    system.sim.run()
    assert done[1] > done[0]
    # the second transfer waited for the shared bus
    assert done[1] - done[0] >= (65536 / 19.2) * 1000 * 0.9


def test_aim_broadcast_single_bus_transfer():
    system = _system("aim")
    system.idc.broadcast(0, 0, 256)
    system.sim.run()
    # one snooped transfer, all others store it
    assert system.stats.get("idc.broadcast_ops") == 1
    for dimm in range(1, 4):
        assert system.stats.get(f"dimm{dimm}.dram.write_bytes") == 256


def test_aim_latency_below_mcn():
    aim = _system("aim")
    aim.idc.remote_read(0, 1, 0, 64)
    aim.sim.run()
    aim_time = aim.sim.now
    mcn = _system("mcn")
    mcn.idc.remote_read(0, 1, 0, 64)
    mcn.sim.run()
    assert aim_time < mcn.sim.now


# -- ABC-DIMM -------------------------------------------------------------------

def test_abc_p2p_inherits_cpu_forwarding():
    system = _system("abc")
    system.idc.remote_read(0, 1, 0, 256)
    system.sim.run()
    assert system.stats.get("fwd.ops") == 2


def test_abc_broadcast_cheaper_than_mcn_broadcast():
    # 16D-8C: 2 DIMMs per channel -> one broadcast-write per channel
    abc = _system("abc", "16D-8C")
    abc.idc.broadcast(0, 0, 4096)
    abc.sim.run()
    abc_time = abc.sim.now
    mcn = _system("mcn", "16D-8C")
    mcn.idc.broadcast(0, 0, 4096)
    mcn.sim.run()
    assert abc_time < mcn.sim.now


def test_abc_broadcast_stores_on_every_dimm():
    system = _system("abc", "8D-4C")
    system.idc.broadcast(2, 0, 512)
    system.sim.run()
    for dimm in range(8):
        if dimm != 2:
            assert system.stats.get(f"dimm{dimm}.dram.write_bytes") == 512


# -- Table I analytic model -----------------------------------------------------

def test_peak_bandwidth_formulas():
    config = SystemConfig.named("16D-8C")
    model = peak_bandwidth(config)
    beta = config.channel.bandwidth_gbps
    assert model.cpu_forwarding == pytest.approx(8 * beta / 2)
    assert model.intra_channel_broadcast == pytest.approx(16 * beta)
    assert model.dedicated_bus == pytest.approx(beta)
    assert model.dimm_link == pytest.approx(14 * 25.0)


def test_dimm_link_peak_scales_with_links():
    small = peak_bandwidth(SystemConfig.named("4D-2C"))
    large = peak_bandwidth(SystemConfig.named("16D-8C"))
    assert large.dimm_link > small.dimm_link
    # AIM's dedicated bus does not scale
    assert large.dedicated_bus == small.dedicated_bus
