"""Edge-case tests for the functional data-link layer (retries, loss)."""

import pytest

from repro.errors import ProtocolError
from repro.protocol.datalink import DataLinkEndpoint, LossyChannel, make_link_pair
from repro.protocol.packet import Command, Packet
from repro.sim import Simulator
from repro.sim.time import ns


def test_retry_exhaustion_raises():
    sim = Simulator()
    # error_rate ~1: every frame corrupted -> sender gives up after retries
    side_a, _side_b = make_link_pair(sim, error_rate=0.999, seed=3)
    side_a.max_retries = 3
    side_a.send(Packet(src=0, dst=1, cmd=Command.WRITE_REQ, payload=b"x"))
    with pytest.raises(ProtocolError):
        sim.run()


def test_unattached_endpoint_rejected():
    sim = Simulator()
    endpoint = DataLinkEndpoint(sim)
    endpoint.send(Packet(src=0, dst=1, cmd=Command.READ_REQ))
    with pytest.raises(ProtocolError):
        sim.run()


def test_channel_without_receiver_rejected():
    sim = Simulator()
    channel = LossyChannel(sim)
    with pytest.raises(ProtocolError):
        channel.send(b"data")


def test_invalid_error_rate_rejected():
    sim = Simulator()
    with pytest.raises(ProtocolError):
        LossyChannel(sim, error_rate=1.0)


def test_duplicate_suppression_on_ack_loss():
    """If an ACK is lost the sender retransmits; the receiver must still
    deliver exactly once."""
    sim = Simulator()
    side_a, side_b = make_link_pair(sim, error_rate=0.4, seed=11)
    for index in range(10):
        side_a.send(
            Packet(src=0, dst=1, cmd=Command.WRITE_REQ, payload=bytes([index]) * 4)
        )
    sim.run()
    delivered = [p.payload[0] for p in side_b.received]
    assert sorted(delivered) == list(range(10))
    assert len(delivered) == len(set(delivered))


def test_channel_statistics():
    sim = Simulator()
    channel = LossyChannel(sim, error_rate=0.5, name="x")
    received = []
    channel.connect(received.append)
    for _ in range(100):
        channel.send(b"\x00" * 16)
    sim.run()
    assert channel.delivered + channel.corrupted == 100
    assert channel.corrupted > 10


def test_latency_applied_per_frame():
    sim = Simulator()
    side_a, side_b = make_link_pair(sim, latency_ps=ns(100))
    side_a.send(Packet(src=0, dst=1, cmd=Command.READ_REQ))
    sim.run()
    # one data frame + one ACK frame, each ns(100): done no earlier than 200ns
    assert sim.now >= ns(200)
    assert len(side_b.received) == 1


def test_default_rng_seed_derives_from_channel_name():
    """Distinct default channels must draw decorrelated error patterns
    (a shared Random(0) made same-configured channels corrupt in lockstep),
    while identically-named channels stay bit-reproducible."""

    def pattern(name):
        sim = Simulator()
        channel = LossyChannel(sim, error_rate=0.3, name=name)
        channel.connect(lambda _data: None)
        for _ in range(200):
            channel.send(b"\x55" * 8)
        sim.run()
        return channel.corrupted

    assert pattern("a->b") == pattern("a->b")  # reproducible
    assert pattern("a->b") != pattern("b->a")  # decorrelated
