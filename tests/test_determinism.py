"""Determinism regression suite: the invariant the results cache rests on.

Re-running the same :class:`~repro.experiments.runner.RunSpec` must
reproduce the *entire* observable outcome bit-for-bit — makespan,
per-thread completion times, and the full stat dump (counters and
histograms).  If any of these tests fails, serving cached results is no
longer sound and :data:`repro.results_cache.CODE_VERSION` semantics are
moot: fix the nondeterminism, don't bump the version.
"""

import json

import pytest

from repro.experiments.runner import RunSpec, execute_spec

#: one cheap tiny-size spec per mechanism, plus the CPU baseline and the
#: special corners the cache also covers (DL-opt flow, fault injection).
SPECS = {
    "cpu": RunSpec(config="4D-2C", workload="pagerank", size="tiny", kind="cpu", mechanism="cpu"),
    "mcn": RunSpec(config="4D-2C", workload="pagerank", size="tiny", mechanism="mcn"),
    "aim": RunSpec(config="4D-2C", workload="pagerank", size="tiny", mechanism="aim"),
    "abc": RunSpec(config="4D-2C", workload="spmv_bc", size="tiny", mechanism="abc"),
    "dimm_link": RunSpec(config="4D-2C", workload="pagerank", size="tiny", mechanism="dimm_link"),
    "dl_opt": RunSpec(config="4D-2C", workload="pagerank", size="tiny", kind="optimized"),
    "faulted": RunSpec(
        config="8D-4C",
        workload="uniform_random",
        size="tiny",
        seed=11,
        mechanism="dimm_link",
        fault_fraction=0.67,
    ),
}


@pytest.mark.parametrize("label", sorted(SPECS))
def test_rerunning_a_spec_is_bit_deterministic(label):
    spec = SPECS[label]
    first = execute_spec(spec)
    second = execute_spec(spec)

    assert first.time_ps == second.time_ps
    assert first.thread_end_ps == second.thread_end_ps
    assert first.bus_occupancy == second.bus_occupancy
    assert first.profile_ps == second.profile_ps
    # the full stat dump: every counter and histogram, exact values
    assert first.stats.to_json_dict() == second.stats.to_json_dict()


@pytest.mark.parametrize("label", ("cpu", "dimm_link"))
def test_serialized_reruns_are_byte_identical(label):
    spec = SPECS[label]
    first = json.dumps(execute_spec(spec).to_json_dict(), sort_keys=True)
    second = json.dumps(execute_spec(spec).to_json_dict(), sort_keys=True)
    assert first == second


def test_different_seeds_are_observably_different():
    # the converse sanity check: the seed really feeds the workload, so
    # distinct specs don't silently alias to one simulation
    base = RunSpec(config="4D-2C", workload="uniform_random", size="tiny", seed=1)
    other = RunSpec(config="4D-2C", workload="uniform_random", size="tiny", seed=2)
    assert execute_spec(base).stats.to_json_dict() != execute_spec(other).stats.to_json_dict()
