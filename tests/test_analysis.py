"""Tests for analysis helpers (geomean, speedups, tables)."""

import math

import pytest

from repro.analysis.report import format_table, geomean, speedups


def test_geomean_known_values():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([5.0]) == pytest.approx(5.0)


def test_geomean_rejects_bad_input():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([-1.0])


def test_geomean_log_identity():
    values = [1.5, 2.5, 9.0, 0.25]
    expected = math.exp(sum(map(math.log, values)) / len(values))
    assert geomean(values) == pytest.approx(expected)


def test_speedups_ratio_orientation():
    baseline = {"a": 10.0, "b": 30.0}
    candidate = {"a": 5.0, "b": 10.0}
    result = speedups(baseline, candidate)
    assert result == {"a": 2.0, "b": 3.0}


def test_speedups_key_mismatch_rejected():
    with pytest.raises(ValueError):
        speedups({"a": 1.0}, {"b": 1.0})


def test_format_table_alignment_and_floats():
    text = format_table(["name", "value"], [("x", 1.23456), ("longer", 2)])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.235" in lines[2]
    assert lines[0].index("value") == lines[2].index("1.235")


def test_format_table_precision():
    text = format_table(["v"], [(3.14159,)], precision=1)
    assert "3.1" in text and "3.14" not in text


# -- sweep runner ----------------------------------------------------------------

def test_sweep_runs_and_tags_rows():
    from repro.analysis import Sweep

    sweep = Sweep("n", [1, 2, 3], lambda n: {"square": n * n})
    rows = sweep.run()
    assert [r["n"] for r in rows] == [1, 2, 3]
    assert sweep.column("square") == [1, 4, 9]


def test_sweep_best_and_table():
    from repro.analysis import Sweep

    sweep = Sweep("x", [2, 5, 3], lambda x: {"score": -abs(x - 3)})
    sweep.run()
    assert sweep.best("score") == 3
    assert sweep.best("score", maximize=False) == 5
    text = sweep.table(["score"])
    assert "score" in text and "x" in text


def test_sweep_column_before_run_rejected():
    import pytest
    from repro.analysis import Sweep

    sweep = Sweep("x", [1], lambda x: {"y": x})
    with pytest.raises(RuntimeError):
        sweep.column("y")
