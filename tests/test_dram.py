"""Tests for the DRAM substrate (timing, address map, banks, module)."""

import pytest

from repro.dram import (
    DDR4_2400_LRDIMM,
    LINE_BYTES,
    AddressMap,
    DRAMModule,
    decode_global,
    encode_global,
    preset,
)
from repro.errors import ConfigError
from repro.sim import Simulator, StatRegistry
from repro.sim.time import ns


# -- timing ------------------------------------------------------------------

def test_preset_lookup():
    assert preset("DDR4_2400_LRDIMM") is DDR4_2400_LRDIMM
    with pytest.raises(ConfigError):
        preset("DDR5_9000")


def test_rank_bandwidth_matches_data_rate():
    # 2400 MT/s x 8 bytes = 19.2 GB/s
    assert DDR4_2400_LRDIMM.rank_bandwidth_gbps == pytest.approx(19.2)


def test_derived_latencies_positive_and_ordered():
    t = DDR4_2400_LRDIMM
    assert 0 < t.tburst_ps < t.tcas_ps
    assert t.tcas_ps == ns(17 * 0.833)
    assert t.trcd_ps == t.trp_ps  # same clock count for this grade
    assert t.tras_ps > t.trcd_ps


def test_burst_bytes_is_cache_line():
    assert DDR4_2400_LRDIMM.burst_bytes == 64


# -- address mapping ----------------------------------------------------------

def test_address_map_interleaves_banks_first():
    amap = AddressMap(ranks=2, banks_per_rank=16, row_bytes=8192)
    loc0 = amap.decode(0)
    loc1 = amap.decode(LINE_BYTES)
    assert loc0.bank == 0 and loc1.bank == 1
    assert loc0.rank == loc1.rank == 0


def test_address_map_rank_after_banks():
    amap = AddressMap(ranks=2, banks_per_rank=16, row_bytes=8192)
    loc = amap.decode(16 * LINE_BYTES)
    assert loc.bank == 0
    assert loc.rank == 1


def test_address_map_round_trip_distinct():
    amap = AddressMap(ranks=2, banks_per_rank=16, row_bytes=8192)
    seen = set()
    for line in range(4096):
        seen.add(amap.decode(line * LINE_BYTES))
    assert len(seen) == 4096


def test_address_map_rejects_negative():
    amap = AddressMap(ranks=1, banks_per_rank=4, row_bytes=8192)
    with pytest.raises(ConfigError):
        amap.decode(-64)


def test_global_address_round_trip():
    addr = encode_global(13, 0x123456)
    assert decode_global(addr) == (13, 0x123456)


def test_global_address_range_checks():
    with pytest.raises(ConfigError):
        encode_global(32, 0)
    with pytest.raises(ConfigError):
        decode_global(1 << 42)


# -- module -------------------------------------------------------------------

def _module(ranks=2):
    sim = Simulator()
    stats = StatRegistry()
    return sim, stats, DRAMModule(sim, DDR4_2400_LRDIMM, ranks, stats)


def test_single_line_read_latency_is_miss_latency():
    sim, stats, dram = _module()
    times = []
    dram.access(0, 64, is_write=False).add_callback(lambda ev: times.append(sim.now))
    sim.run()
    t = DDR4_2400_LRDIMM
    expected = t.trcd_ps + t.tcas_ps + t.tburst_ps
    assert times == [expected]
    assert stats.get("dram.row_miss") == 1
    assert stats.get("dram.activates") == 1


def test_row_hit_is_faster_than_miss():
    sim, stats, dram = _module()
    done = []
    dram.access(0, 64, is_write=False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    first = done[-1]
    dram.access(0, 64, is_write=False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    second = done[-1] - first
    assert second < first
    assert stats.get("dram.row_hit") == 1


def test_row_conflict_slower_than_miss():
    sim, stats, dram = _module(ranks=1)
    t = DDR4_2400_LRDIMM
    row_stride = t.banks_per_rank * t.row_bytes  # same bank, next row
    done = []
    dram.access(0, 64, False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    miss_latency = done[-1]
    start = sim.now
    dram.access(row_stride, 64, False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    conflict_latency = done[-1] - start
    assert conflict_latency > miss_latency
    assert stats.get("dram.row_conflict") == 1


def test_bank_parallelism_beats_serialisation():
    # Two lines in different banks should complete much faster than 2x one.
    sim, _, dram = _module(ranks=1)
    done = []
    dram.access(0, 64, False).add_callback(lambda ev: done.append(sim.now))
    dram.access(64, 64, False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    single = DDR4_2400_LRDIMM.trcd_ps + DDR4_2400_LRDIMM.tcas_ps + DDR4_2400_LRDIMM.tburst_ps
    assert done[-1] < 2 * single


def test_bulk_stream_achieves_near_peak_bandwidth():
    sim, _, dram = _module(ranks=2)
    nbytes = 1 << 20
    done = []
    dram.access(0, nbytes, False).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    gbps = nbytes / (done[0] / 1000)  # bytes per ns == GB/s
    peak = dram.peak_bandwidth_gbps
    assert 0.5 * peak < gbps <= peak


def test_write_counts_write_bytes():
    sim, stats, dram = _module()
    dram.access(0, 256, is_write=True)
    sim.run()
    assert stats.get("dram.write_bytes") == 256
    assert stats.get("dram.read_bytes") == 0


def test_refresh_delays_access_inside_window():
    sim, _, dram = _module(ranks=1)
    t = DDR4_2400_LRDIMM
    # Land the request inside the refresh window at the end of interval 0.
    inside = t.trefi_ps - t.trfc_ps + 1
    done = []

    def issue(_):
        dram.access(0, 64, False).add_callback(lambda ev: done.append(sim.now))

    sim.schedule(inside, issue)
    sim.run()
    assert done[0] >= t.trefi_ps  # deferred past the refresh boundary


def test_zero_size_request_rejected():
    from repro.errors import SimulationError

    _, _, dram = _module()
    with pytest.raises(SimulationError):
        dram.access(0, 0, False)


def test_tfaw_limits_activate_bursts():
    """Five activates to distinct banks of one rank must respect tFAW."""
    sim, _, dram = _module(ranks=1)
    t = DDR4_2400_LRDIMM
    done = []
    # five different banks, all row misses -> five activates
    for bank in range(5):
        dram.access(bank * 64, 64, False).add_callback(
            lambda ev: done.append(sim.now)
        )
    sim.run()
    # the fifth activate cannot start before tFAW after the first
    first_activate = 0
    fifth_data = done[-1] - t.tcas_ps - t.tburst_ps - t.trcd_ps
    assert fifth_data >= first_activate + t.tfaw_ps - t.trcd_ps - 1


def test_trrd_spaces_back_to_back_activates():
    sim, _, dram = _module(ranks=1)
    t = DDR4_2400_LRDIMM
    done = []
    for bank in range(2):
        dram.access(bank * 64, 64, False).add_callback(
            lambda ev: done.append(sim.now)
        )
    sim.run()
    assert done[1] - done[0] >= min(t.trrd_ps, t.tburst_ps)


def test_precharge_all_forces_row_misses():
    sim, stats, dram = _module()
    dram.access(0, 64, False)
    sim.run()
    dram.precharge_all()
    dram.access(0, 64, False)
    sim.run()
    assert stats.get("dram.row_miss") == 2
    assert stats.get("dram.row_hit") == 0
