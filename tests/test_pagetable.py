"""Tests for the page codec and the page table / placement policies."""

import pytest

from repro.dram.address import (
    PAGE_BYTES,
    page_home,
    page_id,
    page_index,
    page_of,
    page_offset,
)
from repro.errors import ConfigError
from repro.experiments.runner import RunSpec, execute_spec
from repro.mapping.pagetable import (
    DATA_PLACEMENTS,
    MAX_MIGRATIONS_PER_PAGE,
    NEXT_TOUCH_THRESHOLD,
    FirstTouchPolicy,
    NextTouchPolicy,
    PageTable,
    ProfiledPolicy,
    StaticPolicy,
    make_policy,
)


# -- page codec ----------------------------------------------------------------------


def test_page_codec_roundtrip():
    for dimm in (0, 3, 31):
        for index in (0, 1, 255, 1 << 20):
            page = page_id(dimm, index)
            assert page_home(page) == dimm
            assert page_index(page) == index


def test_page_of_matches_page_id():
    assert page_of(2, 5 * PAGE_BYTES) == page_id(2, 5)
    assert page_of(2, 5 * PAGE_BYTES + 100) == page_id(2, 5)


def test_page_offset_is_local_byte_offset():
    page = page_id(3, 7)
    assert page_offset(page) == 7 * PAGE_BYTES


def test_page_codec_rejects_out_of_range():
    with pytest.raises(ConfigError):
        page_id(32, 0)  # dimm beyond 5 bits
    with pytest.raises(ConfigError):
        page_id(-1, 0)
    with pytest.raises(ConfigError):
        page_id(0, -1)
    with pytest.raises(ConfigError):
        page_home(-1)


# -- policies ------------------------------------------------------------------------


def test_static_policy_places_at_home_and_never_migrates():
    table = PageTable(StaticPolicy(), num_dimms=4)
    page = page_id(2, 0)
    owner, migration = table.resolve(page, toucher=0)
    assert owner == 2 and migration is None
    for _ in range(10):
        owner, migration = table.resolve(page, toucher=0)
        assert owner == 2 and migration is None
    assert table.migrations == 0
    assert table.migrated_bytes == 0


def test_first_touch_owns_at_first_toucher():
    table = PageTable(FirstTouchPolicy(), num_dimms=4)
    page = page_id(2, 0)
    owner, migration = table.resolve(page, toucher=1)
    assert owner == 1 and migration is None
    # later touchers see the first-touch owner, no movement
    owner, migration = table.resolve(page, toucher=3)
    assert owner == 1 and migration is None
    assert table.migrations == 0


def test_next_touch_migrates_after_threshold():
    table = PageTable(NextTouchPolicy(threshold=2), num_dimms=4)
    page = page_id(0, 0)
    owner, migration = table.resolve(page, toucher=1)
    assert owner == 0 and migration is None  # streak 1 < threshold
    owner, migration = table.resolve(page, toucher=1)
    assert owner == 1 and migration == (0, 1)  # streak 2 -> move
    assert table.migrations == 1
    assert table.migrated_bytes == PAGE_BYTES


def test_next_touch_streak_resets_on_owner_touch():
    table = PageTable(NextTouchPolicy(threshold=2), num_dimms=4)
    page = page_id(0, 0)
    table.resolve(page, toucher=1)  # remote streak 1
    table.resolve(page, toucher=0)  # owner touch clears the streak
    owner, migration = table.resolve(page, toucher=1)  # streak restarts at 1
    assert owner == 0 and migration is None
    assert table.migrations == 0


def test_next_touch_streak_resets_on_different_remote_toucher():
    table = PageTable(NextTouchPolicy(threshold=2), num_dimms=4)
    page = page_id(0, 0)
    table.resolve(page, toucher=1)
    owner, migration = table.resolve(page, toucher=2)  # new toucher: streak 1
    assert owner == 0 and migration is None


def test_next_touch_migration_cap_bounds_ping_pong():
    table = PageTable(NextTouchPolicy(threshold=1, max_migrations=3), num_dimms=4)
    page = page_id(0, 0)
    # two DIMMs alternate touching the shared page; threshold=1 would
    # migrate forever without the cap
    for i in range(20):
        table.resolve(page, toucher=1 + (i % 2))
    assert table.migrations == 3
    assert table.migrated_bytes == 3 * PAGE_BYTES


def test_profiled_policy_uses_assignment_with_home_fallback():
    assigned = page_id(0, 0)
    unassigned = page_id(3, 1)
    table = PageTable(ProfiledPolicy({assigned: 2}), num_dimms=4)
    owner, _ = table.resolve(assigned, toucher=1)
    assert owner == 2
    owner, _ = table.resolve(unassigned, toucher=1)
    assert owner == 3  # static home fallback
    assert table.migrations == 0


def test_counters_track_touches():
    table = PageTable(StaticPolicy(), num_dimms=4)
    page = page_id(1, 0)
    table.resolve(page, toucher=1)  # local
    table.resolve(page, toucher=0)  # remote
    table.resolve(page, toucher=2)  # remote
    assert table.touches == 3
    assert table.remote_touches == 2


def test_make_policy_covers_every_name():
    for name in DATA_PLACEMENTS:
        assignment = {} if name == "profiled" else None
        assert make_policy(name, assignment).name == name


def test_make_policy_rejects_unknowns_and_bad_args():
    with pytest.raises(ConfigError):
        make_policy("round_robin")
    with pytest.raises(ConfigError):
        make_policy("profiled")  # needs an assignment
    with pytest.raises(ConfigError):
        NextTouchPolicy(threshold=0)
    with pytest.raises(ConfigError):
        NextTouchPolicy(max_migrations=0)


def test_table_rejects_bad_touchers_and_dimm_counts():
    with pytest.raises(ConfigError):
        PageTable(StaticPolicy(), num_dimms=0)
    table = PageTable(StaticPolicy(), num_dimms=4)
    with pytest.raises(ConfigError):
        table.resolve(page_id(0, 0), toucher=4)


def test_defaults_match_documented_constants():
    policy = NextTouchPolicy()
    assert policy.threshold == NEXT_TOUCH_THRESHOLD == 2
    assert policy.max_migrations == MAX_MIGRATIONS_PER_PAGE == 4


# -- integration: migrations appear in run stats -------------------------------------


def _hotpage_spec(policy: str) -> RunSpec:
    return RunSpec(
        config="4D-2C",
        workload="hotpage",
        size="tiny",
        mechanism="mcn",
        data_placement=policy,
    )


def test_next_touch_run_charges_migrations():
    result = execute_spec(_hotpage_spec("next_touch"))
    migrations = result.stats.sum_suffix("placement.migrations")
    migrated = result.stats.sum_suffix("placement.migrated_bytes")
    assert migrations > 0
    assert migrated == migrations * PAGE_BYTES
    assert result.stats.sum_suffix("placement.migration_ps") > 0


def test_static_run_never_migrates():
    result = execute_spec(_hotpage_spec("static"))
    assert result.stats.sum_suffix("placement.migrations") == 0
    assert result.stats.sum_suffix("placement.migrated_bytes") == 0
