"""Tests for the graph substrate (R-MAT, CSR, partitioning, refinement)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.graph import (
    Graph,
    bisection_refine,
    cross_fraction,
    cross_partition_edges,
    edge_balanced_bounds,
    from_edges,
    grouped_edge_balanced_bounds,
    owner_of,
    partition_bounds,
    rmat,
)


def test_from_edges_builds_valid_csr():
    src = np.array([0, 0, 1, 2])
    dst = np.array([1, 2, 2, 0])
    graph = from_edges(3, src, dst)
    assert graph.num_vertices == 3
    assert graph.num_edges == 4
    assert list(graph.neighbors(0)) == [1, 2]
    assert graph.degree(1) == 1


def test_from_edges_deduplicates():
    src = np.array([0, 0, 0])
    dst = np.array([1, 1, 2])
    graph = from_edges(3, src, dst)
    assert graph.num_edges == 2


def test_rmat_deterministic_per_seed():
    a = rmat(8, 4, seed=1)
    b = rmat(8, 4, seed=1)
    c = rmat(8, 4, seed=2)
    assert np.array_equal(a.indices, b.indices)
    assert not np.array_equal(a.indices, c.indices)


def test_rmat_undirected_is_symmetric():
    graph = rmat(7, 4, seed=3)
    edges = set()
    for v in range(graph.num_vertices):
        for u in graph.neighbors(v):
            edges.add((v, int(u)))
    assert all((u, v) in edges for v, u in edges)


def test_rmat_power_law_degree_skew():
    graph = rmat(11, 8, seed=42)
    degrees = np.diff(graph.indptr)
    assert degrees.max() > 8 * degrees.mean()


def test_rmat_scale_bounds():
    with pytest.raises(WorkloadError):
        rmat(0)
    with pytest.raises(WorkloadError):
        rmat(25)


def test_partition_bounds_cover_range():
    bounds = partition_bounds(100, 7)
    assert bounds[0] == 0 and bounds[-1] == 100
    assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))


def test_owner_of_matches_bounds():
    total, parts = 100, 7
    bounds = partition_bounds(total, parts)
    for index in range(total):
        owner = owner_of(index, total, parts)
        assert bounds[owner] <= index < bounds[owner + 1]


def test_cross_partition_edges_conserves_total():
    graph = rmat(9, 4, seed=5)
    matrix = cross_partition_edges(graph, 8)
    assert matrix.sum() == graph.num_edges


def test_edge_balanced_bounds_balance():
    graph = rmat(11, 8, seed=42)
    bounds = edge_balanced_bounds(graph, 16)
    per_block = [
        graph.indptr[bounds[i + 1]] - graph.indptr[bounds[i]] for i in range(16)
    ]
    mean = graph.num_edges / 16
    assert max(per_block) < 2.0 * mean  # far tighter than vertex-balanced


def test_grouped_bounds_respect_half_boundary():
    graph = rmat(10, 8, seed=42)
    bounds = grouped_edge_balanced_bounds(graph, 8)
    assert bounds[4] == graph.num_vertices // 2
    assert len(bounds) == 9


def test_bisection_refine_reduces_cross_edges():
    graph = rmat(11, 8, seed=42)
    refined = bisection_refine(graph)
    assert cross_fraction(refined) < cross_fraction(graph)
    # graph is only relabeled: same size
    assert refined.num_vertices == graph.num_vertices
    assert refined.num_edges == graph.num_edges


def test_bisection_refine_preserves_degree_multiset():
    graph = rmat(9, 6, seed=9)
    refined = bisection_refine(graph)
    assert sorted(np.diff(graph.indptr)) == sorted(np.diff(refined.indptr))


def test_invalid_csr_rejected():
    with pytest.raises(WorkloadError):
        Graph(np.array([1, 2]), np.array([0]))
