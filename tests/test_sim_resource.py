"""Tests for bandwidth and slot resources (repro.sim.resource)."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthResource, Simulator, SlotResource
from repro.sim.time import ns


def test_transfer_duration_matches_bandwidth():
    sim = Simulator()
    bus = BandwidthResource(sim, bytes_per_ns=10.0)  # 10 GB/s
    done = []
    bus.transfer(1000).add_callback(lambda ev: done.append(sim.now))
    sim.run()
    assert done == [ns(100)]


def test_transfers_serialise():
    sim = Simulator()
    bus = BandwidthResource(sim, bytes_per_ns=1.0)
    times = []
    bus.transfer(100).add_callback(lambda ev: times.append(sim.now))
    bus.transfer(100).add_callback(lambda ev: times.append(sim.now))
    sim.run()
    assert times == [ns(100), ns(200)]
    assert bus.busy_ps == ns(200)
    assert bus.bytes_moved == 200


def test_latency_added_after_occupancy():
    sim = Simulator()
    link = BandwidthResource(sim, bytes_per_ns=1.0, latency_ps=ns(5))
    times = []
    link.transfer(10).add_callback(lambda ev: times.append(sim.now))
    link.transfer(10).add_callback(lambda ev: times.append(sim.now))
    sim.run()
    # latency overlaps with the next transfer's occupancy
    assert times == [ns(15), ns(25)]
    assert link.busy_ps == ns(20)


def test_occupancy_fraction():
    sim = Simulator()
    bus = BandwidthResource(sim, bytes_per_ns=1.0)
    bus.transfer(50)
    sim.run()
    sim.schedule(ns(50), lambda _: None)
    sim.run()
    assert bus.occupancy() == pytest.approx(0.5)


def test_zero_byte_transfer_completes():
    sim = Simulator()
    bus = BandwidthResource(sim, bytes_per_ns=1.0)
    fired = []
    bus.transfer(0).add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [0]


def test_negative_transfer_rejected():
    sim = Simulator()
    bus = BandwidthResource(sim, bytes_per_ns=1.0)
    with pytest.raises(SimulationError):
        bus.transfer(-1)


def test_occupy_blocks_transfers():
    sim = Simulator()
    bus = BandwidthResource(sim, bytes_per_ns=1.0)
    times = []
    bus.occupy(ns(30)).add_callback(lambda ev: times.append(("occ", sim.now)))
    bus.transfer(10).add_callback(lambda ev: times.append(("xfer", sim.now)))
    sim.run()
    assert times == [("occ", ns(30)), ("xfer", ns(40))]


def test_slot_resource_blocks_and_wakes_fifo():
    sim = Simulator()
    slots = SlotResource(sim, 1)
    order = []

    def worker(tag, hold):
        yield slots.acquire()
        order.append((tag, sim.now))
        yield hold
        slots.release()

    sim.process(worker("a", 100))
    sim.process(worker("b", 100))
    sim.process(worker("c", 100))
    sim.run()
    assert order == [("a", 0), ("b", 100), ("c", 200)]
    assert slots.peak_in_use == 1


def test_slot_release_without_acquire_raises():
    sim = Simulator()
    slots = SlotResource(sim, 2)
    with pytest.raises(SimulationError):
        slots.release()


def test_slot_capacity_enforced():
    sim = Simulator()
    slots = SlotResource(sim, 2)
    granted = []
    slots.acquire().add_callback(lambda ev: granted.append(1))
    slots.acquire().add_callback(lambda ev: granted.append(2))
    slots.acquire().add_callback(lambda ev: granted.append(3))
    sim.run()
    assert granted == [1, 2]
    slots.release()
    sim.run()
    assert granted == [1, 2, 3]
