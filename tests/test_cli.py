"""Tests for the dimmlink-repro CLI."""

import json

import pytest

from repro.experiments.cli import (
    _SIZED,
    _UNSIZED,
    experiment_names,
    main,
    traceable_names,
)


def test_experiment_names_cover_all_figures():
    names = experiment_names()
    for expected in ("fig1", "fig10", "fig14", "table1", "table2", "mapping", "all"):
        assert expected in names


def test_every_experiment_name_resolves_to_a_callable():
    for name in experiment_names():
        if name == "all":
            continue
        runner = _SIZED.get(name) or _UNSIZED.get(name)
        assert callable(runner), f"{name} has no runner"


def test_all_covers_exactly_the_union_of_dispatch_tables():
    assert not set(_SIZED) & set(_UNSIZED)
    assert set(experiment_names()) == set(_SIZED) | set(_UNSIZED) | {"all"}


def test_traceable_names_are_experiment_names_minus_all():
    assert traceable_names() == [n for n in experiment_names() if n != "all"]
    assert "all" not in traceable_names()


def test_cli_runs_unsized_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "SerDes" in out


def test_cli_runs_sized_experiment(capsys):
    assert main(["fig11", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "breakdown" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_size():
    with pytest.raises(SystemExit):
        main(["fig11", "--size", "huge"])


def test_cli_rejects_target_without_trace_command():
    with pytest.raises(SystemExit):
        main(["fig11", "fig10"])


def test_cli_trace_rejects_missing_or_bad_target():
    with pytest.raises(SystemExit):
        main(["trace"])
    with pytest.raises(SystemExit):
        main(["trace", "all"])
    with pytest.raises(SystemExit):
        main(["trace", "fig99"])


def test_cli_trace_emits_valid_chrome_trace(tmp_path, capsys):
    # table1 traces the cheapest scenario (4D-2C kmeans); golden-schema
    # check on the emitted Chrome trace document
    assert main(["trace", "table1", "--size", "tiny", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "spans by category" in out

    chrome_path = tmp_path / "table1-tiny.trace.json"
    jsonl_path = tmp_path / "table1-tiny.trace.jsonl"
    assert chrome_path.exists() and jsonl_path.exists()

    doc = json.loads(chrome_path.read_text())
    assert set(doc) == {"displayTimeUnit", "otherData", "traceEvents"}
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in ("M", "X", "i", "C")
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0
    # complete spans from at least the dram + nmp layers on this tiny run
    cats = {event.get("cat") for event in events if event["ph"] == "X"}
    assert {"dram", "nmp"} <= cats

    meta = json.loads(jsonl_path.read_text().splitlines()[0])
    assert meta["type"] == "meta"
    assert meta["spans"] == doc["otherData"]["spans"]
