"""Tests for the dimmlink-repro CLI."""

import json
import re

import pytest

from repro.experiments.cli import (
    _SIZED,
    _UNSIZED,
    experiment_names,
    main,
    traceable_names,
)


def cache_stats(output: str):
    """Parse the ``[cache] cache.hits=H cache.misses=M`` line."""
    match = re.search(r"\[cache\] cache\.hits=(\d+) cache\.misses=(\d+)", output)
    assert match, f"no cache stat line in output:\n{output}"
    return int(match.group(1)), int(match.group(2))


def test_experiment_names_cover_all_figures():
    names = experiment_names()
    for expected in ("fig1", "fig10", "fig14", "table1", "table2", "mapping", "all"):
        assert expected in names


def test_every_experiment_name_resolves_to_a_callable():
    for name in experiment_names():
        if name == "all":
            continue
        runner = _SIZED.get(name) or _UNSIZED.get(name)
        assert callable(runner), f"{name} has no runner"


def test_all_covers_exactly_the_union_of_dispatch_tables():
    assert not set(_SIZED) & set(_UNSIZED)
    assert set(experiment_names()) == set(_SIZED) | set(_UNSIZED) | {"all"}


def test_traceable_names_are_experiment_names_minus_all():
    assert traceable_names() == [n for n in experiment_names() if n != "all"]
    assert "all" not in traceable_names()


def test_cli_runs_unsized_experiment(capsys):
    assert main(["table2", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "SerDes" in out


def test_cli_runs_sized_experiment(tmp_path, capsys):
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "breakdown" in out
    hits, misses = cache_stats(out)
    assert hits == 0 and misses > 0  # cold cache: everything simulated


def test_cli_no_cache_reports_misses_and_writes_nothing(tmp_path, capsys):
    assert main(["fig17", "--size", "tiny", "--no-cache"]) == 0
    hits, misses = cache_stats(capsys.readouterr().out)
    assert hits == 0 and misses > 0


def test_cli_warm_cache_fig16_performs_zero_simulations(tmp_path, capsys):
    # acceptance criterion: re-running `dimmlink-repro fig16 --size tiny`
    # against a warm cache is pure replay — zero simulations
    args = ["fig16", "--size", "tiny", "--jobs", "2", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold_out = capsys.readouterr().out
    cold_hits, cold_misses = cache_stats(cold_out)
    assert cold_misses > 0

    assert main(args) == 0
    warm_out = capsys.readouterr().out
    warm_hits, warm_misses = cache_stats(warm_out)
    assert warm_misses == 0  # zero simulations
    assert warm_hits == cold_hits + cold_misses  # every point served

    # byte-identical tables modulo the cache stat line itself
    strip = lambda text: [l for l in text.splitlines() if "[cache]" not in l]
    assert strip(warm_out) == strip(cold_out)


def test_cli_jobs_must_be_positive():
    with pytest.raises(SystemExit):
        main(["fig17", "--size", "tiny", "--jobs", "0"])


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_size():
    with pytest.raises(SystemExit):
        main(["fig11", "--size", "huge"])


def test_cli_rejects_target_without_trace_command():
    with pytest.raises(SystemExit):
        main(["fig11", "fig10"])


def test_cli_trace_rejects_missing_or_bad_target():
    with pytest.raises(SystemExit):
        main(["trace"])
    with pytest.raises(SystemExit):
        main(["trace", "all"])
    with pytest.raises(SystemExit):
        main(["trace", "fig99"])


def test_cli_trace_emits_valid_chrome_trace(tmp_path, capsys):
    # table1 traces the cheapest scenario (4D-2C kmeans); golden-schema
    # check on the emitted Chrome trace document
    assert main(["trace", "table1", "--size", "tiny", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "spans by category" in out

    chrome_path = tmp_path / "table1-tiny.trace.json"
    jsonl_path = tmp_path / "table1-tiny.trace.jsonl"
    assert chrome_path.exists() and jsonl_path.exists()

    doc = json.loads(chrome_path.read_text())
    assert set(doc) == {"displayTimeUnit", "otherData", "traceEvents"}
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in ("M", "X", "i", "C")
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0
    # complete spans from at least the dram + nmp layers on this tiny run
    cats = {event.get("cat") for event in events if event["ph"] == "X"}
    assert {"dram", "nmp"} <= cats

    meta = json.loads(jsonl_path.read_text().splitlines()[0])
    assert meta["type"] == "meta"
    assert meta["spans"] == doc["otherData"]["spans"]


# -- supervision flags and the dead-letter / interrupt paths -------------------------


def test_supervision_flags_are_validated():
    with pytest.raises(SystemExit):
        main(["fig11", "--retries", "-1"])
    with pytest.raises(SystemExit):
        main(["fig11", "--spec-timeout", "0"])


def test_supervision_flags_configure_the_runner(tmp_path, capsys, monkeypatch):
    from repro.experiments import cli as cli_module
    from repro.experiments import runner as sweep_runner

    seen = {}

    def probe(size):
        runner = sweep_runner.get_runner()
        seen["retries"] = runner.retries
        seen["spec_timeout"] = runner.spec_timeout

    monkeypatch.setitem(cli_module._SIZED, "fig11", probe)
    assert main(
        [
            "fig11",
            "--cache-dir",
            str(tmp_path),
            "--retries",
            "3",
            "--spec-timeout",
            "120",
        ]
    ) == 0
    assert seen == {"retries": 3, "spec_timeout": 120.0}


def test_quarantined_sweep_reports_dead_letters_and_fails(tmp_path, capsys, monkeypatch):
    from repro.errors import SweepExecutionError
    from repro.experiments import cli as cli_module
    from repro.experiments import runner as sweep_runner
    from repro.experiments.runner import DeadLetter, RunSpec

    def quarantined(size):
        letter = DeadLetter(
            spec=RunSpec(config="4D-2C", workload="pagerank", size=size),
            key="f" * 64,
            attempts=2,
            error="RuntimeError: injected crash",
        )
        sweep_runner.get_runner().dead_letters.append(letter)
        raise SweepExecutionError("1 spec(s) quarantined", dead_letters=[letter])

    monkeypatch.setitem(cli_module._SIZED, "fig11", quarantined)
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "[dead-letter] 1 spec(s) quarantined:" in out
    assert "injected crash" in out
    assert "attempts=2" in out
    assert "[cache]" in out  # the cache line still prints


def test_keyboard_interrupt_prints_partial_cache_line(tmp_path, capsys, monkeypatch):
    from repro.experiments import cli as cli_module

    def interrupted(size):
        raise KeyboardInterrupt()

    monkeypatch.setitem(cli_module._SIZED, "fig11", interrupted)
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 130
    out = capsys.readouterr().out
    assert "interrupted" in out
    assert "[cache]" in out  # partial stats flushed for the resume message


def test_keyboard_interrupt_exit_130_keeps_checkpointed_results(
    tmp_path, capsys, monkeypatch
):
    """The full contract: Ctrl-C mid-sweep exits 130 *and* every grid
    point that finished before the interrupt survives in the cache."""
    from repro.experiments import cli as cli_module
    from repro.experiments import runner as sweep_runner
    from repro.results_cache import ResultsCache
    from tests.test_runner_supervision import grid, interrupt_execute

    specs = grid(4, bad_at=2)

    def interrupted_sweep(size):
        runner = sweep_runner.get_runner()
        runner.execute = interrupt_execute
        runner.run(specs)

    monkeypatch.setitem(cli_module._SIZED, "fig11", interrupted_sweep)
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 130
    out = capsys.readouterr().out
    assert "interrupted" in out and "[cache]" in out

    cache = ResultsCache(tmp_path)
    assert cache.get(specs[0].cache_key()) is not None
    assert cache.get(specs[1].cache_key()) is not None
    assert cache.get(specs[2].cache_key()) is None  # the interrupted spec


# -- fabric commands: submit / work --------------------------------------------------


def _tiny_gridded(monkeypatch, count=3):
    """Point the ``mapping`` submit entry at a tiny synthetic grid."""
    import types

    from repro.experiments import cli as cli_module
    from tests.test_runner_supervision import grid

    specs = grid(count)
    monkeypatch.setitem(
        cli_module._GRIDDED,
        "mapping",
        types.SimpleNamespace(specs=lambda size: specs),
    )
    return specs


def test_fabric_commands_validate_their_arguments(tmp_path):
    with pytest.raises(SystemExit):
        main(["submit", "mapping"])  # no --broker
    with pytest.raises(SystemExit):
        main(["work"])  # no --broker
    with pytest.raises(SystemExit):
        main(["submit", "table2", "--broker", str(tmp_path)])  # not gridded
    with pytest.raises(SystemExit):
        main(["submit", "mapping", "--broker", str(tmp_path), "--no-cache"])
    with pytest.raises(SystemExit):
        main(["work", "--broker", str(tmp_path), "--lease-ttl", "0"])


def test_submit_then_work_then_resubmit_round_trip(tmp_path, capsys, monkeypatch):
    from tests.test_runner_supervision import fake_result

    specs = _tiny_gridded(monkeypatch)
    broker_dir = str(tmp_path / "farm")

    args = ["submit", "mapping", "--broker", broker_dir, "--size", "tiny"]
    assert main(args + ["--no-wait"]) == 0
    out = capsys.readouterr().out
    assert f"{len(specs)} spec(s): {len(specs)} enqueued" in out

    # monkeypatched grids are synthetic, so drain with a synthetic worker
    # (the real `work` command path is covered by examples/fabric_smoke.py)
    from repro.fabric.broker import WorkBroker
    from repro.fabric.worker import Worker

    worker = Worker(WorkBroker(broker_dir), execute=fake_result)
    assert worker.run() == len(specs)

    # resubmitting a finished grid streams one progress line and exits 0
    assert main(args) == 0
    out = capsys.readouterr().out
    assert f"{len(specs)} already done" in out
    assert f"done={len(specs)}" in out
    assert "grid complete" in out


def test_work_command_drains_real_specs(tmp_path, capsys):
    """`work` against a broker holding one real tiny spec executes it
    through the standard ``execute_spec`` path and reports its tally."""
    from repro.experiments.runner import RunSpec
    from repro.fabric.broker import WorkBroker

    broker_dir = str(tmp_path / "farm")
    spec = RunSpec(config="4D-2C", workload="kmeans", size="tiny")
    broker = WorkBroker(broker_dir)
    broker.submit([spec])

    assert main(["work", "--broker", broker_dir]) == 0
    out = capsys.readouterr().out
    assert "completed=1" in out
    assert broker.cache.get(spec.cache_key()) is not None


def test_submit_no_wait_reports_dead_specs_with_exit_one(
    tmp_path, capsys, monkeypatch
):
    from repro.fabric.broker import BrokerConfig, WorkBroker

    specs = _tiny_gridded(monkeypatch)
    broker_dir = tmp_path / "farm"
    broker = WorkBroker(broker_dir, config=BrokerConfig(retries=0))
    broker.submit(specs)
    record = broker.claim("w1")
    broker.fail(record.key, "w1", "RuntimeError: injected crash")

    args = ["submit", "mapping", "--broker", str(broker_dir), "--size", "tiny"]
    assert main(args + ["--no-wait"]) == 1
    assert "1 dead" in capsys.readouterr().out


def test_broker_flag_configures_fabric_mode(tmp_path, monkeypatch):
    """An experiment run with ``--broker`` gets a fabric-mode runner
    sharing the broker's cache directory."""
    from repro.experiments import cli as cli_module
    from repro.experiments import runner as sweep_runner

    seen = {}

    def probe(size):
        runner = sweep_runner.get_runner()
        seen["broker_root"] = runner.broker.root
        seen["cache_dir"] = runner.cache.cache_dir

    monkeypatch.setitem(cli_module._SIZED, "fig11", probe)
    broker_dir = tmp_path / "farm"
    assert main(["fig11", "--size", "tiny", "--broker", str(broker_dir)]) == 0
    assert seen["broker_root"] == broker_dir
    assert seen["cache_dir"] == broker_dir / "cache"


# -- workload suite (dlrm / apsp) ----------------------------------------------------


def test_cli_runs_dlrm_serving_tiny(tmp_path, capsys):
    args = ["dlrm", "--size", "tiny", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "DLRM embedding serving" in out
    assert "p99 us" in out
    hits, misses = cache_stats(out)
    assert hits == 0 and misses > 0

    # warm replay: the whole sweep is served from cache, table unchanged
    assert main(args) == 0
    warm_out = capsys.readouterr().out
    _, warm_misses = cache_stats(warm_out)
    assert warm_misses == 0
    strip = lambda text: [l for l in text.splitlines() if "[cache]" not in l]
    assert strip(warm_out) == strip(out)


def test_cli_runs_apsp_tiny(capsys):
    assert main(["apsp", "--size", "tiny", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Blocked Floyd-Warshall" in out
    assert "exact" in out  # the zero-diff column made it to the table


def test_workload_suite_experiments_are_traceable_and_submittable():
    from repro.experiments.cli import submittable_names

    for name in ("dlrm", "apsp"):
        assert name in experiment_names()
        assert name in traceable_names()
        assert name in submittable_names()


def test_submit_apsp_grid_over_broker(tmp_path, capsys):
    """The apsp grid round-trips through the file broker: submit
    enqueues every spec (params included), a worker drains them, and a
    resubmit reports the grid complete."""
    from repro.fabric.broker import WorkBroker
    from repro.fabric.worker import Worker
    from tests.test_results_cache import fake_result

    broker_dir = str(tmp_path / "farm")
    args = ["submit", "apsp", "--broker", broker_dir, "--size", "tiny"]
    assert main(args + ["--no-wait"]) == 0
    out = capsys.readouterr().out
    assert "enqueued" in out

    worker = Worker(WorkBroker(broker_dir), execute=fake_result)
    drained = worker.run()
    assert drained > 0

    assert main(args) == 0
    out = capsys.readouterr().out
    assert "grid complete" in out


def test_work_sigterm_drains_gracefully_and_releases_claim(tmp_path):
    """Satellite: SIGTERM on `work` exits 143 after handing any
    in-flight claim straight back to the queue — no lease left behind,
    nothing quarantined, the remaining specs immediately claimable."""
    import os
    import signal
    import subprocess
    import sys
    import time
    from pathlib import Path

    from repro.experiments.runner import RunSpec
    from repro.fabric.broker import WorkBroker

    repo = Path(__file__).resolve().parent.parent
    broker_dir = str(tmp_path / "farm")
    specs = [
        RunSpec(config="4D-2C", workload="pagerank", size="tiny", seed=seed)
        for seed in range(80)
    ]
    broker = WorkBroker(broker_dir)
    broker.submit(specs)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli", "work",
         "--broker", broker_dir],
        cwd=repo, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            counts = broker.counts()
            if counts["done"] >= 1 or counts["leased"] >= 1:
                break
            time.sleep(0.01)
        else:
            raise AssertionError("worker never started draining")
        proc.send_signal(signal.SIGTERM)
        output = proc.communicate(timeout=60)[0]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == 143, output
    assert "drained by signal 15" in output
    # the graceful contract: zero held leases, zero quarantined specs,
    # and any interrupted claim is pending again with its attempt
    # uncharged — claimable right now, not after a TTL
    assert broker.leases.live_count() == 0
    counts = broker.counts()
    assert counts["leased"] == 0 and counts["dead"] == 0
    for record in broker.records().values():
        assert record.state in ("pending", "done")
        if record.state == "pending":
            assert record.attempts == 0
    if counts["pending"]:
        assert broker.claim("successor") is not None  # no TTL wait


def test_submit_streams_progress_through_tcp_service(tmp_path, capsys, monkeypatch):
    """`submit` pointed at a tcp:// endpoint rides the service protocol:
    structured submit report, live progress events, exit 0 on drain."""
    import threading
    import time

    from repro.fabric.worker import Worker
    from repro.service.server import ReproService, ServiceThread
    from tests.test_runner_supervision import fake_result

    specs = _tiny_gridded(monkeypatch)
    service = ReproService(tmp_path / "broker", durable=False,
                           poll_interval_s=0.02)
    thread = ServiceThread(service).start()
    try:
        def drain_once_submitted():
            # wait for the grid to land: a drain-mode worker on a still
            # empty broker would see drained() and exit before the CLI
            # even submits
            deadline = time.monotonic() + 30.0
            while (service.broker.counts()["total"] < len(specs)
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            Worker(
                service.broker, execute=fake_result, poll_interval_s=0.01
            ).run()

        worker = threading.Thread(target=drain_once_submitted)
        worker.start()
        code = main(["submit", "mapping", "--broker", thread.address,
                     "--size", "tiny"])
        worker.join(30.0)
    finally:
        thread.drain(timeout_s=30.0)
    assert code == 0
    out = capsys.readouterr().out
    assert f"{len(specs)} spec(s): {len(specs)} enqueued" in out
    assert "grid complete" in out


def test_serve_and_grid_commands_validate_endpoints(tmp_path):
    with pytest.raises(SystemExit):
        main(["serve", "--broker", "tcp://127.0.0.1:7741"])  # needs a dir
    with pytest.raises(SystemExit):
        main(["mapping", "--broker", "tcp://127.0.0.1:7741"])  # grids need a dir
