"""Tests for the dimmlink-repro CLI."""

import json
import re

import pytest

from repro.experiments.cli import (
    _SIZED,
    _UNSIZED,
    experiment_names,
    main,
    traceable_names,
)


def cache_stats(output: str):
    """Parse the ``[cache] cache.hits=H cache.misses=M`` line."""
    match = re.search(r"\[cache\] cache\.hits=(\d+) cache\.misses=(\d+)", output)
    assert match, f"no cache stat line in output:\n{output}"
    return int(match.group(1)), int(match.group(2))


def test_experiment_names_cover_all_figures():
    names = experiment_names()
    for expected in ("fig1", "fig10", "fig14", "table1", "table2", "mapping", "all"):
        assert expected in names


def test_every_experiment_name_resolves_to_a_callable():
    for name in experiment_names():
        if name == "all":
            continue
        runner = _SIZED.get(name) or _UNSIZED.get(name)
        assert callable(runner), f"{name} has no runner"


def test_all_covers_exactly_the_union_of_dispatch_tables():
    assert not set(_SIZED) & set(_UNSIZED)
    assert set(experiment_names()) == set(_SIZED) | set(_UNSIZED) | {"all"}


def test_traceable_names_are_experiment_names_minus_all():
    assert traceable_names() == [n for n in experiment_names() if n != "all"]
    assert "all" not in traceable_names()


def test_cli_runs_unsized_experiment(capsys):
    assert main(["table2", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "SerDes" in out


def test_cli_runs_sized_experiment(tmp_path, capsys):
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "breakdown" in out
    hits, misses = cache_stats(out)
    assert hits == 0 and misses > 0  # cold cache: everything simulated


def test_cli_no_cache_reports_misses_and_writes_nothing(tmp_path, capsys):
    assert main(["fig17", "--size", "tiny", "--no-cache"]) == 0
    hits, misses = cache_stats(capsys.readouterr().out)
    assert hits == 0 and misses > 0


def test_cli_warm_cache_fig16_performs_zero_simulations(tmp_path, capsys):
    # acceptance criterion: re-running `dimmlink-repro fig16 --size tiny`
    # against a warm cache is pure replay — zero simulations
    args = ["fig16", "--size", "tiny", "--jobs", "2", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold_out = capsys.readouterr().out
    cold_hits, cold_misses = cache_stats(cold_out)
    assert cold_misses > 0

    assert main(args) == 0
    warm_out = capsys.readouterr().out
    warm_hits, warm_misses = cache_stats(warm_out)
    assert warm_misses == 0  # zero simulations
    assert warm_hits == cold_hits + cold_misses  # every point served

    # byte-identical tables modulo the cache stat line itself
    strip = lambda text: [l for l in text.splitlines() if "[cache]" not in l]
    assert strip(warm_out) == strip(cold_out)


def test_cli_jobs_must_be_positive():
    with pytest.raises(SystemExit):
        main(["fig17", "--size", "tiny", "--jobs", "0"])


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_size():
    with pytest.raises(SystemExit):
        main(["fig11", "--size", "huge"])


def test_cli_rejects_target_without_trace_command():
    with pytest.raises(SystemExit):
        main(["fig11", "fig10"])


def test_cli_trace_rejects_missing_or_bad_target():
    with pytest.raises(SystemExit):
        main(["trace"])
    with pytest.raises(SystemExit):
        main(["trace", "all"])
    with pytest.raises(SystemExit):
        main(["trace", "fig99"])


def test_cli_trace_emits_valid_chrome_trace(tmp_path, capsys):
    # table1 traces the cheapest scenario (4D-2C kmeans); golden-schema
    # check on the emitted Chrome trace document
    assert main(["trace", "table1", "--size", "tiny", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "spans by category" in out

    chrome_path = tmp_path / "table1-tiny.trace.json"
    jsonl_path = tmp_path / "table1-tiny.trace.jsonl"
    assert chrome_path.exists() and jsonl_path.exists()

    doc = json.loads(chrome_path.read_text())
    assert set(doc) == {"displayTimeUnit", "otherData", "traceEvents"}
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in ("M", "X", "i", "C")
        assert isinstance(event["pid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0
    # complete spans from at least the dram + nmp layers on this tiny run
    cats = {event.get("cat") for event in events if event["ph"] == "X"}
    assert {"dram", "nmp"} <= cats

    meta = json.loads(jsonl_path.read_text().splitlines()[0])
    assert meta["type"] == "meta"
    assert meta["spans"] == doc["otherData"]["spans"]


# -- supervision flags and the dead-letter / interrupt paths -------------------------


def test_supervision_flags_are_validated():
    with pytest.raises(SystemExit):
        main(["fig11", "--retries", "-1"])
    with pytest.raises(SystemExit):
        main(["fig11", "--spec-timeout", "0"])


def test_supervision_flags_configure_the_runner(tmp_path, capsys, monkeypatch):
    from repro.experiments import cli as cli_module
    from repro.experiments import runner as sweep_runner

    seen = {}

    def probe(size):
        runner = sweep_runner.get_runner()
        seen["retries"] = runner.retries
        seen["spec_timeout"] = runner.spec_timeout

    monkeypatch.setitem(cli_module._SIZED, "fig11", probe)
    assert main(
        [
            "fig11",
            "--cache-dir",
            str(tmp_path),
            "--retries",
            "3",
            "--spec-timeout",
            "120",
        ]
    ) == 0
    assert seen == {"retries": 3, "spec_timeout": 120.0}


def test_quarantined_sweep_reports_dead_letters_and_fails(tmp_path, capsys, monkeypatch):
    from repro.errors import SweepExecutionError
    from repro.experiments import cli as cli_module
    from repro.experiments import runner as sweep_runner
    from repro.experiments.runner import DeadLetter, RunSpec

    def quarantined(size):
        letter = DeadLetter(
            spec=RunSpec(config="4D-2C", workload="pagerank", size=size),
            key="f" * 64,
            attempts=2,
            error="RuntimeError: injected crash",
        )
        sweep_runner.get_runner().dead_letters.append(letter)
        raise SweepExecutionError("1 spec(s) quarantined", dead_letters=[letter])

    monkeypatch.setitem(cli_module._SIZED, "fig11", quarantined)
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "[dead-letter] 1 spec(s) quarantined:" in out
    assert "injected crash" in out
    assert "attempts=2" in out
    assert "[cache]" in out  # the cache line still prints


def test_keyboard_interrupt_prints_partial_cache_line(tmp_path, capsys, monkeypatch):
    from repro.experiments import cli as cli_module

    def interrupted(size):
        raise KeyboardInterrupt()

    monkeypatch.setitem(cli_module._SIZED, "fig11", interrupted)
    assert main(["fig11", "--size", "tiny", "--cache-dir", str(tmp_path)]) == 130
    out = capsys.readouterr().out
    assert "interrupted" in out
    assert "[cache]" in out  # partial stats flushed for the resume message
