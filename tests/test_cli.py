"""Tests for the dimmlink-repro CLI."""

import pytest

from repro.experiments.cli import experiment_names, main


def test_experiment_names_cover_all_figures():
    names = experiment_names()
    for expected in ("fig1", "fig10", "fig14", "table1", "table2", "mapping", "all"):
        assert expected in names


def test_cli_runs_unsized_experiment(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "SerDes" in out


def test_cli_runs_sized_experiment(capsys):
    assert main(["fig11", "--size", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "breakdown" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_rejects_unknown_size():
    with pytest.raises(SystemExit):
        main(["fig11", "--size", "huge"])
