"""Parallel-equivalence suite: the ProcessPoolExecutor fan-out changes
wall-clock only — results are byte-identical and identically ordered to
the serial path, whatever the worker count."""

import json

from repro.experiments import fig16_bandwidth
from repro.experiments.runner import RunSpec, SweepRunner
from repro.results_cache import ResultsCache

#: a small fig16-style grid: CPU reference + a bandwidth sweep.
GRID = fig16_bandwidth.specs(
    size="tiny",
    bandwidths=(4.0, 64.0),
    config_names=("4D-2C",),
    workload_names=("pagerank",),
)


def serialize(results):
    return json.dumps([r.to_json_dict() for r in results], sort_keys=True)


def test_jobs2_output_is_byte_identical_and_ordered_like_jobs1():
    serial = SweepRunner(jobs=1).run(GRID)
    parallel = SweepRunner(jobs=2).run(GRID)
    assert serialize(parallel) == serialize(serial)
    # same order: each result lines up with its spec
    for spec, result in zip(GRID, parallel):
        assert result.workload == "pagerank"
        expected = "cpu" if spec.kind == "cpu" else "dimm_link"
        assert result.mechanism == expected


def test_parallel_run_populates_cache_serial_run_replays(tmp_path):
    cold = SweepRunner(jobs=2, cache=ResultsCache(tmp_path))
    first = cold.run(GRID)
    assert cold.stats == {"cache.hits": 0, "cache.misses": len(GRID)}

    warm = SweepRunner(jobs=1, cache=ResultsCache(tmp_path))
    second = warm.run(GRID)
    assert warm.stats == {"cache.hits": len(GRID), "cache.misses": 0}
    assert serialize(second) == serialize(first)


def test_mixed_hit_miss_batches_keep_order(tmp_path):
    cache = ResultsCache(tmp_path)
    SweepRunner(jobs=1, cache=cache).run(GRID[:2])  # warm a prefix only

    runner = SweepRunner(jobs=2, cache=ResultsCache(tmp_path))
    results = runner.run(GRID)
    assert runner.stats == {"cache.hits": 2, "cache.misses": len(GRID) - 2}
    assert serialize(results) == serialize(SweepRunner(jobs=1).run(GRID))


def test_experiment_rows_equal_under_parallelism():
    serial_rows = fig16_bandwidth.run(
        size="tiny",
        bandwidths=(4.0, 64.0),
        config_names=("4D-2C",),
        workload_names=("pagerank",),
        runner=SweepRunner(jobs=1),
    )
    parallel_rows = fig16_bandwidth.run(
        size="tiny",
        bandwidths=(4.0, 64.0),
        config_names=("4D-2C",),
        workload_names=("pagerank",),
        runner=SweepRunner(jobs=2),
    )
    assert parallel_rows == serial_rows
