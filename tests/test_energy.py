"""Tests for the energy model (repro.energy)."""

import pytest

from repro.config import SystemConfig
from repro.energy.accounting import energy_report
from repro.energy.params import DEFAULT_PARAMS, EnergyParams
from repro.nmp.results import RunResult
from repro.nmp.system import NMPSystem
from repro.sim import StatRegistry
from repro.sim.time import us
from repro.workloads.microbench import UniformRandom


def _result(counters, time_ps=us(10), mechanism="dimm_link"):
    stats = StatRegistry()
    for name, value in counters.items():
        stats.add(name, value)
    return RunResult(
        system_name="16D-8C",
        mechanism=mechanism,
        workload="test",
        time_ps=time_ps,
        thread_end_ps=[time_ps],
        stats=stats,
    )


def test_paper_constants():
    assert DEFAULT_PARAMS.dl_pj_per_bit == 1.17
    assert DEFAULT_PARAMS.bus_pj_per_bit == 22.0
    assert DEFAULT_PARAMS.dram_pj_per_bit == 14.0
    assert DEFAULT_PARAMS.activate_nj == 2.1
    assert DEFAULT_PARAMS.nmp_processor_w == 1.8


def test_dram_energy_formula():
    config = SystemConfig.named("16D-8C")
    result = _result({"dram.read_bytes": 1_000_000, "dram.activates": 100})
    report = energy_report(result, config, polling="proxy")
    expected = 1_000_000 * 8 * 14e-12 + 100 * 2.1e-9
    assert report.dram_j == pytest.approx(expected)


def test_dl_link_energy_uses_grs_constant():
    config = SystemConfig.named("16D-8C")
    result = _result({"dl.hop_bytes": 1_000_000})
    report = energy_report(result, config, polling="proxy")
    assert report.dl_link_j == pytest.approx(1_000_000 * 8 * 1.17e-12)


def test_bus_energy_includes_dedicated_bus():
    config = SystemConfig.named("16D-8C")
    result = _result({"bus.bytes": 500, "idc.dedicated_bus_bytes": 500})
    report = energy_report(result, config, polling="baseline")
    assert report.bus_j == pytest.approx(1000 * 8 * 22e-12)


def test_nmp_static_scales_with_time_and_dimms():
    config = SystemConfig.named("16D-8C")
    short = energy_report(_result({}, time_ps=us(10)), config, polling="proxy")
    long = energy_report(_result({}, time_ps=us(20)), config, polling="proxy")
    assert long.nmp_static_j == pytest.approx(2 * short.nmp_static_j)
    assert short.nmp_static_j == pytest.approx(16 * 1.8 * 10e-6)


def test_cpu_runs_have_no_nmp_static():
    config = SystemConfig.named("16D-8C")
    report = energy_report(_result({}, mechanism="cpu"), config, polling="baseline")
    assert report.nmp_static_j == 0.0


def test_baseline_polling_energy_grows_with_runtime():
    config = SystemConfig.named("16D-8C")
    short = energy_report(_result({}, time_ps=us(10)), config, polling="baseline")
    long = energy_report(_result({}, time_ps=us(100)), config, polling="baseline")
    assert long.host_j > short.host_j


def test_interrupt_polling_energy_is_event_based():
    config = SystemConfig.named("16D-8C")
    result = _result({"poll.scan_reads": 10, "poll.notices": 5})
    report = energy_report(result, config, polling="baseline+interrupt")
    expected = 10 * DEFAULT_PARAMS.poll_nj * 1e-9 + 5 * DEFAULT_PARAMS.interrupt_nj * 1e-9
    assert report.host_j == pytest.approx(expected)


def test_total_is_sum_of_categories():
    config = SystemConfig.named("16D-8C")
    result = _result(
        {"dram.read_bytes": 1000, "dl.hop_bytes": 1000, "bus.bytes": 1000, "fwd.ops": 3}
    )
    report = energy_report(result, config, polling="proxy")
    assert report.total_j == pytest.approx(
        report.dram_j + report.dl_link_j + report.bus_j
        + report.nmp_static_j + report.host_j
    )
    assert set(report.as_dict()) == {
        "dram", "dl_link", "bus", "nmp_static", "host", "idc", "total"
    }


def test_custom_params_scale_linearly():
    config = SystemConfig.named("16D-8C")
    result = _result({"dram.read_bytes": 1000})
    doubled = EnergyParams(dram_pj_per_bit=28.0)
    base = energy_report(result, config, polling="proxy")
    scaled = energy_report(result, config, polling="proxy", params=doubled)
    assert scaled.dram_j == pytest.approx(2 * base.dram_j, rel=0.01)


def test_real_run_energy_consistency():
    """End-to-end: MCN spends more IDC energy than DIMM-Link on the same
    remote-heavy kernel (the Fig. 13 claim)."""
    workload = UniformRandom(ops_per_thread=60, remote_fraction=0.5, seed=2)
    reports = {}
    for mech in ("mcn", "dimm_link"):
        system = NMPSystem(SystemConfig.named("8D-4C"), idc=mech)
        result = system.run(workload.thread_factories(32, 8))
        reports[mech] = energy_report(
            result, system.config, polling=result.polling
        )
    assert reports["mcn"].idc_j > reports["dimm_link"].idc_j
