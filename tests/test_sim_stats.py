"""Tests for statistics collection (repro.sim.stats)."""

from repro.sim import Histogram, StatRegistry


def test_counter_add_and_get():
    stats = StatRegistry()
    stats.add("reads")
    stats.add("reads", 4)
    assert stats.get("reads") == 5
    assert stats.get("missing") == 0
    assert stats.get("missing", 7) == 7


def test_set_and_max():
    stats = StatRegistry()
    stats.set("x", 3)
    stats.max("x", 10)
    stats.max("x", 5)
    assert stats.get("x") == 10


def test_scope_prefixes_writes_into_parent():
    stats = StatRegistry()
    dimm = stats.scope("dimm0")
    dimm.add("dram.activates", 2)
    assert stats.get("dimm0.dram.activates") == 2
    assert dimm.get("dram.activates") == 2


def test_nested_scopes():
    stats = StatRegistry()
    inner = stats.scope("sys").scope("dimm3")
    inner.add("bytes", 64)
    assert stats.get("sys.dimm3.bytes") == 64


def test_counters_filter_and_sum():
    stats = StatRegistry()
    stats.add("a.x", 1)
    stats.add("a.y", 2)
    stats.add("b.z", 4)
    assert stats.sum("a.") == 3
    assert set(stats.counters("a.")) == {"a.x", "a.y"}


def test_histogram_basic_moments():
    hist = Histogram("lat")
    for value in [1, 2, 3, 4]:
        hist.record(value)
    assert hist.count == 4
    assert hist.mean == 2.5
    assert hist.min == 1
    assert hist.max == 4


def test_histogram_log2_buckets():
    hist = Histogram()
    hist.record(1)    # bucket 0
    hist.record(2)    # bucket 1
    hist.record(3)    # bucket 1
    hist.record(1024)  # bucket 10
    buckets = dict(hist.buckets())
    assert buckets[0] == 1
    assert buckets[1] == 2
    assert buckets[10] == 1


def test_histogram_subunit_values_do_not_alias_nonpositive_bucket():
    # regression: values in (0, 1) floor to negative log2 buckets; bucket -1
    # (values in [0.5, 1)) used to collide with the <=0 sentinel, corrupting
    # latency-distribution tails
    hist = Histogram()
    hist.record(0.5)   # log2 bucket -1
    hist.record(0.75)  # log2 bucket -1
    hist.record(0.25)  # log2 bucket -2
    hist.record(0.0)   # non-positive sentinel
    hist.record(-3.0)  # non-positive sentinel
    buckets = dict(hist.buckets())
    assert buckets[-1] == 2
    assert buckets[-2] == 1
    assert buckets[Histogram.NONPOS_BUCKET] == 2
    assert Histogram.NONPOS_BUCKET not in (-1, -2)


def test_histogram_nonpositive_sentinel_sorts_first():
    hist = Histogram()
    hist.record(0)
    hist.record(4)
    assert hist.buckets() == [(Histogram.NONPOS_BUCKET, 1), (2, 1)]


def test_counters_prefix_matches_whole_components():
    # regression: prefix "dl" used to substring-match "dlx.foo" too
    stats = StatRegistry()
    stats.add("dl", 1)
    stats.add("dl.hops", 2)
    stats.add("dl.hop_bytes", 4)
    stats.add("dlx.foo", 8)
    assert set(stats.counters("dl")) == {"dl", "dl.hops", "dl.hop_bytes"}
    assert stats.sum("dl") == 7
    assert set(stats.counters("dlx")) == {"dlx.foo"}
    assert stats.counters("") == {
        "dl": 1,
        "dl.hops": 2,
        "dl.hop_bytes": 4,
        "dlx.foo": 8,
    }


def test_counters_prefix_with_trailing_dot_and_scopes():
    stats = StatRegistry()
    stats.add("dimm0.bytes", 1)
    stats.add("dimm01.bytes", 2)
    assert set(stats.counters("dimm0.")) == {"dimm0.bytes"}
    scoped = stats.scope("dimm0")
    # a scoped registry's implicit prefix ends with "." and must not leak
    # the lexically-adjacent "dimm01." keys
    assert set(scoped.counters()) == {"dimm0.bytes"}
    assert scoped.sum("") == 1


def test_histogram_via_registry_is_cached():
    stats = StatRegistry()
    h1 = stats.histogram("lat")
    h2 = stats.histogram("lat")
    assert h1 is h2
    h1.record(5)
    assert stats.histogram("lat").count == 1


def test_registry_iteration_sorted():
    stats = StatRegistry()
    stats.add("b", 1)
    stats.add("a", 1)
    assert [name for name, _ in stats] == ["a", "b"]
