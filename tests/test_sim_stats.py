"""Tests for statistics collection (repro.sim.stats)."""

from repro.sim import Histogram, StatRegistry


def test_counter_add_and_get():
    stats = StatRegistry()
    stats.add("reads")
    stats.add("reads", 4)
    assert stats.get("reads") == 5
    assert stats.get("missing") == 0
    assert stats.get("missing", 7) == 7


def test_set_and_max():
    stats = StatRegistry()
    stats.set("x", 3)
    stats.max("x", 10)
    stats.max("x", 5)
    assert stats.get("x") == 10


def test_scope_prefixes_writes_into_parent():
    stats = StatRegistry()
    dimm = stats.scope("dimm0")
    dimm.add("dram.activates", 2)
    assert stats.get("dimm0.dram.activates") == 2
    assert dimm.get("dram.activates") == 2


def test_nested_scopes():
    stats = StatRegistry()
    inner = stats.scope("sys").scope("dimm3")
    inner.add("bytes", 64)
    assert stats.get("sys.dimm3.bytes") == 64


def test_counters_filter_and_sum():
    stats = StatRegistry()
    stats.add("a.x", 1)
    stats.add("a.y", 2)
    stats.add("b.z", 4)
    assert stats.sum("a.") == 3
    assert set(stats.counters("a.")) == {"a.x", "a.y"}


def test_histogram_basic_moments():
    hist = Histogram("lat")
    for value in [1, 2, 3, 4]:
        hist.record(value)
    assert hist.count == 4
    assert hist.mean == 2.5
    assert hist.min == 1
    assert hist.max == 4


def test_histogram_log2_buckets():
    hist = Histogram()
    hist.record(1)    # bucket 0
    hist.record(2)    # bucket 1
    hist.record(3)    # bucket 1
    hist.record(1024)  # bucket 10
    buckets = dict(hist.buckets())
    assert buckets[0] == 1
    assert buckets[1] == 2
    assert buckets[10] == 1


def test_histogram_via_registry_is_cached():
    stats = StatRegistry()
    h1 = stats.histogram("lat")
    h2 = stats.histogram("lat")
    assert h1 is h2
    h1.record(5)
    assert stats.histogram("lat").count == 1


def test_registry_iteration_sorted():
    stats = StatRegistry()
    stats.add("b", 1)
    stats.add("a", 1)
    assert [name for name, _ in stats] == ["a", "b"]
