"""Cache-soundness suite: hits are value-equal and never re-simulate,
keys cover every spec field + the code version, ``--no-cache`` bypasses,
and corrupt entries degrade to misses instead of raising."""

import dataclasses
import json

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import RunSpec, SweepRunner
from repro.nmp.results import RunResult
from repro.results_cache import CODE_VERSION, ResultsCache
from repro.sim.stats import StatRegistry


def fake_result(spec: RunSpec) -> RunResult:
    """A cheap synthetic result that still exercises the full schema."""
    stats = StatRegistry()
    stats.add("idc.local_bytes", 4096.0)
    stats.scope("dimm0").add("core.busy_ps", 123456.0)
    hist = stats.histogram("dl.packet_ns")
    for value in (0.0, 0.5, 3.0, 700.0):
        hist.record(value)
    return RunResult(
        system_name=spec.config,
        mechanism=spec.mechanism,
        workload=spec.workload,
        time_ps=1_000_000 + spec.seed,
        thread_end_ps=[900_000, 1_000_000 + spec.seed],
        stats=stats,
        bus_occupancy=[0.25, 0.125],
        profile_ps=42,
        polling="proxy",
    )


class CountingExecute:
    """Wraps an execute function with a call counter."""

    def __init__(self, func=fake_result):
        self.func = func
        self.calls = 0

    def __call__(self, spec: RunSpec) -> RunResult:
        self.calls += 1
        return self.func(spec)


SPEC = RunSpec(config="4D-2C", workload="pagerank", size="tiny")


# -- hit behavior --------------------------------------------------------------------


def test_hit_returns_value_equal_result_without_resimulating(tmp_path):
    execute = CountingExecute()
    runner = SweepRunner(cache=ResultsCache(tmp_path), execute=execute)
    first = runner.run([SPEC])[0]
    assert execute.calls == 1

    warm = SweepRunner(cache=ResultsCache(tmp_path), execute=execute)
    second = warm.run([SPEC])[0]
    assert execute.calls == 1  # served from disk, no re-simulation
    assert second == first  # value-equal, stats and histograms included
    assert second is not first
    assert warm.stats == {"cache.hits": 1, "cache.misses": 0}


def test_in_batch_duplicates_simulate_once(tmp_path):
    execute = CountingExecute()
    runner = SweepRunner(cache=ResultsCache(tmp_path), execute=execute)
    results = runner.run([SPEC, SPEC, SPEC])
    assert execute.calls == 1
    assert results[0] == results[1] == results[2]
    assert runner.stats == {"cache.hits": 2, "cache.misses": 1}


# -- key coverage --------------------------------------------------------------------


def test_key_changes_on_every_spec_field():
    variants = {
        "config": "8D-4C",
        "workload": "bfs",
        "size": "small",
        "seed": 43,
        "kind": "optimized",
        "mechanism": "mcn",
        "polling": "baseline",
        "sync_mode": "central",
        "topology": "ring",
        "link_gbps": 64.0,
        "placement": "random",
        "placement_seed": 8,
        "fault_fraction": 0.5,
        "params": "n=60",
        "data_placement": "next_touch",
    }
    # every declared field has a variant above: extending RunSpec without
    # extending this table fails here, not as a silent stale-cache bug
    assert set(variants) == {f.name for f in dataclasses.fields(RunSpec)}
    base_key = SPEC.cache_key()
    for field, value in variants.items():
        changed = dataclasses.replace(SPEC, **{field: value})
        assert changed.cache_key() != base_key, f"key ignores field {field!r}"


def test_key_changes_on_code_version_bump():
    assert SPEC.cache_key(CODE_VERSION) != SPEC.cache_key(CODE_VERSION + 1)


def test_key_is_stable_across_equal_specs():
    assert SPEC.cache_key() == RunSpec(
        config="4D-2C", workload="pagerank", size="tiny"
    ).cache_key()


def test_spec_rejects_nonsense():
    with pytest.raises(ConfigError):
        RunSpec(config="4D-2C", workload="bfs", kind="gpu")
    with pytest.raises(ConfigError):
        RunSpec(config="4D-2C", workload="bfs", placement="best")
    with pytest.raises(ConfigError):
        RunSpec(config="4D-2C", workload="bfs", fault_fraction=1.5)


# -- bypass --------------------------------------------------------------------------


def test_no_cache_bypasses_reads_and_writes(tmp_path):
    execute = CountingExecute()
    cache = ResultsCache(tmp_path)
    runner = SweepRunner(cache=cache, use_cache=False, execute=execute)
    runner.run([SPEC, SPEC])
    runner.run([SPEC])
    assert execute.calls == 3  # every spec re-simulates, duplicates included
    assert len(cache) == 0  # and nothing was persisted
    assert runner.stats == {"cache.hits": 0, "cache.misses": 3}


# -- corruption ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "corruption",
    [
        b"",  # truncated to nothing
        b'{"key": "x", "result": {',  # cut mid-JSON
        b"not json at all",
        b'{"unexpected": "schema"}',  # valid JSON, wrong shape
        b'{"result": {"time_ps": "NaNish"}}',  # schema half-right
    ],
)
def test_corrupted_entries_are_misses_not_errors(tmp_path, corruption):
    cache = ResultsCache(tmp_path)
    key = SPEC.cache_key()
    cache.put(key, fake_result(SPEC))
    cache.path_for(key).write_bytes(corruption)

    assert cache.get(key) is None
    assert cache.misses == 1

    # and the runner transparently re-simulates and repairs the entry
    execute = CountingExecute()
    runner = SweepRunner(cache=cache, execute=execute)
    result = runner.run([SPEC])[0]
    assert execute.calls == 1
    assert cache.get(key) == result


def test_missing_entry_is_a_miss(tmp_path):
    cache = ResultsCache(tmp_path)
    assert cache.get("deadbeef" * 8) is None
    assert (cache.hits, cache.misses) == (0, 1)


def test_put_is_atomic_and_leaves_no_temp_files(tmp_path):
    cache = ResultsCache(tmp_path)
    path = cache.put(SPEC.cache_key(), fake_result(SPEC))
    assert path.exists()
    assert list(tmp_path.glob("*.tmp")) == []
    payload = json.loads(path.read_text())
    assert payload["code_version"] == CODE_VERSION
    assert RunResult.from_json_dict(payload["result"]) == fake_result(SPEC)


def test_clear_empties_the_cache(tmp_path):
    cache = ResultsCache(tmp_path)
    cache.put(SPEC.cache_key(), fake_result(SPEC))
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# -- stored-key / code-version validation --------------------------------------------


def test_renamed_entry_is_a_corruption_miss(tmp_path):
    """A hand-copied or renamed entry must not answer for another key."""
    cache = ResultsCache(tmp_path)
    key = SPEC.cache_key()
    cache.put(key, fake_result(SPEC))
    other_key = "0" * 64
    cache.path_for(key).rename(cache.path_for(other_key))
    assert cache.get(other_key) is None  # stored key disagrees with filename
    assert cache.misses == 1


def test_stored_code_version_mismatch_is_a_miss(tmp_path):
    cache = ResultsCache(tmp_path)
    key = SPEC.cache_key()
    path = cache.put(key, fake_result(SPEC))
    payload = json.loads(path.read_text())
    payload["code_version"] = CODE_VERSION - 1
    path.write_text(json.dumps(payload, sort_keys=True))
    assert cache.get(key) is None
    assert cache.misses == 1


def test_edited_stored_key_is_a_miss(tmp_path):
    cache = ResultsCache(tmp_path)
    key = SPEC.cache_key()
    path = cache.put(key, fake_result(SPEC))
    payload = json.loads(path.read_text())
    payload["key"] = "f" * 64
    path.write_text(json.dumps(payload, sort_keys=True))
    assert cache.get(key) is None


# -- concurrent multi-process writers ------------------------------------------------


def _put_from_child(cache_dir, key, barrier):
    from repro.results_cache import ResultsCache as ChildCache

    cache = ChildCache(cache_dir)
    barrier.wait(timeout=30)  # both writers rename as close together as we can
    cache.put(key, fake_result(SPEC), spec=SPEC.to_json_dict())


def test_concurrent_writers_of_the_same_key_both_leave_a_valid_entry(tmp_path):
    """Atomic temp-file+rename: racing writers never interleave bytes."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    key = SPEC.cache_key()
    barrier = ctx.Barrier(2)
    writers = [
        ctx.Process(target=_put_from_child, args=(str(tmp_path), key, barrier))
        for _ in range(2)
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=60)
        assert writer.exitcode == 0

    first = ResultsCache(tmp_path).get(key)
    second = ResultsCache(tmp_path).get(key)
    assert first is not None and second is not None
    assert first == second == fake_result(SPEC)
    assert list(tmp_path.glob("*.tmp")) == []


# -- golden keys: seed-era cache entries must survive this refactor ------------------


#: exact cache keys produced before the hot-path refactor.  The refactor
#: preserves serialized results bit-for-bit, so CODE_VERSION stays at 2
#: and every warm cache built against the seed tree must keep hitting.
#: If a change alters simulated results, bump CODE_VERSION — these
#: expectations then need regenerating alongside it.
GOLDEN_KEYS = {
    "cpu": "1c613094e091b56fcde3526e97b09b9567f4354a05a48a8755e8f193cea69b39",
    "abc": "955069fab8494b6ffe19b2feda125404ca2ca7e792f705cd72b8a257494d5415",
    "dimm_link": "a74c74329f67e22b4f262d574778a4ba775d55a127fbc25675cfa02458588c89",
    "dl_opt": "127139ed497cc74502e7548876435b9e6eb724449a40440f1580935bbccaeb67",
    "faulted": "ae8526ea4649d3b636e518383ed7368601fbb6629671c958a46d3c57acfb73fc",
}

GOLDEN_SPECS = {
    "cpu": RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", kind="cpu", mechanism="cpu"
    ),
    "abc": RunSpec(config="4D-2C", workload="spmv_bc", size="tiny", mechanism="abc"),
    "dimm_link": RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", mechanism="dimm_link"
    ),
    "dl_opt": RunSpec(
        config="4D-2C", workload="pagerank", size="tiny", kind="optimized"
    ),
    "faulted": RunSpec(
        config="8D-4C",
        workload="uniform_random",
        size="tiny",
        seed=11,
        mechanism="dimm_link",
        fault_fraction=0.67,
    ),
}


def test_code_version_is_unchanged_by_hot_path_refactor():
    assert CODE_VERSION == 2


@pytest.mark.parametrize("label", sorted(GOLDEN_KEYS))
def test_golden_cache_keys_are_stable(label):
    assert GOLDEN_SPECS[label].cache_key() == GOLDEN_KEYS[label], (
        "cache key drifted: pre-refactor warm caches would silently "
        "re-simulate (or worse, a stale CODE_VERSION would serve results "
        "from different code)"
    )


def test_seed_era_entry_still_warm_hits(tmp_path):
    """An entry written under a golden key is served without re-simulating."""
    spec = GOLDEN_SPECS["dimm_link"]
    cache = ResultsCache(tmp_path)
    cache.put(GOLDEN_KEYS["dimm_link"], fake_result(spec), spec=spec.to_json_dict())

    execute = CountingExecute()
    runner = SweepRunner(cache=ResultsCache(tmp_path), execute=execute)
    result = runner.run([spec])[0]
    assert execute.calls == 0  # pure warm hit across the refactor boundary
    assert result == fake_result(spec)
    assert runner.stats == {"cache.hits": 1, "cache.misses": 0}


# -- corrupt-entry quarantine (satellite regression) ---------------------------------


def test_corrupt_entry_is_quarantined_for_post_mortem(tmp_path):
    """A corrupt entry is moved to ``corrupt/`` on first sight: the bytes
    survive for debugging, and later lookups never re-parse them."""
    cache = ResultsCache(tmp_path)
    key = SPEC.cache_key()
    cache.put(key, fake_result(SPEC))
    cache.path_for(key).write_text("not json at all")

    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert not cache.path_for(key).exists()
    assert (cache.corrupt_dir / f"{key}.json").read_text() == "not json at all"

    # second lookup: a plain miss — nothing left to re-parse
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert cache.misses == 2
    assert "corrupt=1" in repr(cache)


def test_missing_entry_is_not_quarantined(tmp_path):
    cache = ResultsCache(tmp_path)
    assert cache.get(SPEC.cache_key()) is None
    assert cache.corrupt == 0
    assert not cache.corrupt_dir.exists()


def test_quarantined_entries_do_not_count_or_block_repair(tmp_path):
    cache = ResultsCache(tmp_path)
    key = SPEC.cache_key()
    cache.put(key, fake_result(SPEC))
    cache.path_for(key).write_text("{}")
    assert cache.get(key) is None
    assert len(cache) == 0  # quarantined files are not entries

    # re-simulating repairs in place; the quarantined bytes remain aside
    cache.put(key, fake_result(SPEC))
    assert len(cache) == 1
    assert cache.get(key) == fake_result(SPEC)
    assert (cache.corrupt_dir / f"{key}.json").exists()
