"""Indexed FR-FCFS must pick the exact request sequence of the legacy scan.

The indexed controller (`legacy_scan=False`) replaces the O(window) deque
scan with row-bucketed queues and a candidate heap; this suite drives both
implementations with identical randomized workloads and asserts that the
issue order (arrival sequence numbers), row-hit accounting, and completion
times are bit-identical.
"""

import random

import pytest

from repro.dram import DDR4_2400_LRDIMM, DRAMModule, FRFCFSController
from repro.sim import Simulator, StatRegistry


def _run_workload(seed, window, ranks, legacy, requests=400):
    """Drive one controller with a seeded random request stream."""
    sim = Simulator()
    module = DRAMModule(sim, DDR4_2400_LRDIMM, ranks, StatRegistry())
    controller = FRFCFSController(
        sim, module, reorder_window=window, legacy_scan=legacy
    )
    controller.pick_log = []
    rng = random.Random(seed)
    timing = DDR4_2400_LRDIMM
    amap = module.address_map
    capacity = ranks * amap.banks_per_rank * 64 * amap.row_bytes
    completions = []

    def driver():
        for index in range(requests):
            # Cluster addresses around a few hot rows so row hits are
            # frequent, with a tail of uniform traffic for misses.
            if rng.random() < 0.7:
                base = rng.choice((0, 3, 11)) * timing.row_bytes * timing.banks_per_rank
                offset = base + rng.randrange(0, timing.row_bytes // 64) * 64
            else:
                offset = rng.randrange(0, capacity // 64) * 64
            nbytes = rng.choice((64, 64, 128, 256))
            offset = min(offset, capacity - nbytes)
            event = controller.submit(offset, nbytes, rng.random() < 0.3)
            event.add_callback(
                lambda ev, i=index: completions.append((i, sim.now))
            )
            # Bursty arrivals: sometimes back-to-back, sometimes idle.
            if rng.random() < 0.5:
                yield rng.choice((0, 1_000, 3_300, 3_300, 10_000, 40_000))

    sim.process(driver(), name="driver")
    sim.run()
    return {
        "picks": controller.pick_log,
        "row_hits": controller.row_hits_scheduled,
        "requests": controller.requests,
        "completions": completions,
        "end_time": sim.now,
    }


@pytest.mark.parametrize("seed", [1, 2, 7, 42, 1337])
@pytest.mark.parametrize("window", [1, 4, 16])
def test_indexed_matches_legacy_scan(seed, window):
    legacy = _run_workload(seed, window, ranks=1, legacy=True)
    indexed = _run_workload(seed, window, ranks=1, legacy=False)
    assert indexed["picks"] == legacy["picks"]
    assert indexed == legacy


@pytest.mark.parametrize("seed", [3, 19])
def test_indexed_matches_legacy_scan_multirank(seed):
    legacy = _run_workload(seed, 8, ranks=2, legacy=True, requests=600)
    indexed = _run_workload(seed, 8, ranks=2, legacy=False, requests=600)
    assert indexed == legacy


def test_row_hits_actually_exercised():
    # Guard against the workload degenerating into all-miss traffic, which
    # would make the equivalence assertions vacuous.
    result = _run_workload(42, 16, ranks=1, legacy=False)
    assert result["row_hits"] > 50
    assert result["row_hits"] < len(result["picks"])
