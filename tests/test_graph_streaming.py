"""Tests for the streaming R-MAT generator and streamed graph workloads."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.experiments.runner import RunSpec, execute_spec
from repro.workloads.graph import (
    RMAT_MAX_SCALE,
    RMAT_STREAM_MAX_SCALE,
    StreamedRMAT,
    from_edges,
    rmat,
    rmat_stream,
)


def collect(stream):
    batches = list(stream)
    src = np.concatenate([s for s, _ in batches])
    dst = np.concatenate([d for _, d in batches])
    return src, dst


# -- stream == in-RAM generator ------------------------------------------------------


def test_single_batch_stream_equals_in_ram_rmat():
    scale, edge_factor = 8, 8
    n = 1 << scale
    graph = rmat(scale, edge_factor=edge_factor, seed=11)
    # one batch covers the whole edge budget -> identical RNG consumption,
    # so building a CSR from the stream reproduces the in-RAM graph
    src, dst = collect(
        rmat_stream(scale, edge_factor=edge_factor, seed=11, batch_edges=n * edge_factor)
    )
    streamed = from_edges(n, src, dst)
    assert np.array_equal(streamed.indptr, graph.indptr)
    assert np.array_equal(streamed.indices, graph.indices)


def test_multi_batch_stream_is_deterministic():
    first = collect(rmat_stream(8, edge_factor=4, seed=3, batch_edges=256))
    second = collect(rmat_stream(8, edge_factor=4, seed=3, batch_edges=256))
    assert np.array_equal(first[0], second[0])
    assert np.array_equal(first[1], second[1])


def test_stream_batches_are_bounded_and_loop_free():
    for src, dst in rmat_stream(8, edge_factor=4, seed=3, batch_edges=256):
        assert len(src) <= 2 * 256  # undirected doubles a batch
        assert not np.any(src == dst)


# -- scale caps ----------------------------------------------------------------------


def test_in_ram_cap_points_at_the_streaming_path():
    with pytest.raises(WorkloadError, match="in-RAM generator"):
        rmat(RMAT_MAX_SCALE + 1)


def test_stream_accepts_scales_beyond_the_in_ram_cap():
    stream = rmat_stream(RMAT_MAX_SCALE + 2, edge_factor=1, batch_edges=1024)
    src, dst = next(iter(stream))  # lazy: only one batch is materialized
    assert len(src) > 0
    assert src.max() < 1 << (RMAT_MAX_SCALE + 2)


def test_stream_rejects_its_own_cap_and_bad_batches():
    with pytest.raises(WorkloadError):
        next(iter(rmat_stream(RMAT_STREAM_MAX_SCALE + 1)))
    with pytest.raises(WorkloadError):
        next(iter(rmat_stream(8, batch_edges=0)))


# -- StreamedRMAT: million-vertex statistics in O(V) memory --------------------------


def test_streamed_rmat_reaches_a_million_vertices():
    stats = StreamedRMAT(scale=20, edge_factor=2)
    assert stats.num_vertices == 1 << 20 >= 1_000_000
    assert stats.num_edges > 0
    assert len(stats.indptr) == stats.num_vertices + 1
    assert stats.indptr[0] == 0
    assert stats.indptr[-1] == stats.num_edges
    assert np.all(np.diff(stats.indptr) >= 0)


def test_streamed_rmat_degrees_match_the_stream():
    stats = StreamedRMAT(scale=8, edge_factor=4, seed=3, batch_edges=256)
    src, _dst = collect(rmat_stream(8, edge_factor=4, seed=3, batch_edges=256))
    assert np.array_equal(
        stats.degrees, np.bincount(src, minlength=stats.num_vertices)
    )


def test_streamed_cross_partition_matches_direct_count():
    stats = StreamedRMAT(scale=8, edge_factor=4, seed=3, batch_edges=256)
    src, dst = collect(rmat_stream(8, edge_factor=4, seed=3, batch_edges=256))
    bounds = np.asarray([0, 64, 128, 192, 256])
    matrix = stats.cross_partition(bounds, parts=4)
    expected = np.zeros((4, 4), dtype=np.int64)
    np.add.at(
        expected,
        (
            np.clip(np.searchsorted(bounds, src, side="right") - 1, 0, 3),
            np.clip(np.searchsorted(bounds, dst, side="right") - 1, 0, 3),
        ),
        1,
    )
    assert np.array_equal(matrix, expected)
    assert matrix.sum() == len(src)


# -- the streamed workload runs end to end -------------------------------------------


def test_pagerank_stream_spec_executes():
    result = execute_spec(
        RunSpec(config="4D-2C", workload="pagerank_stream", size="tiny")
    )
    assert result.workload == "pagerank_stream"
    assert result.time_us > 0
