"""Tests for DL-group topologies and routing (repro.interconnect.topology)."""

import networkx as nx
import pytest

from repro.errors import ConfigError, RoutingError
from repro.interconnect.topology import TOPOLOGY_NAMES, Topology, build_edges


def _nx_graph(topology: Topology) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(range(topology.n))
    graph.add_edges_from(topology.edges)
    return graph


def test_half_ring_is_a_chain():
    topo = Topology("half_ring", 8)
    assert topo.edges == [(i, i + 1) for i in range(7)]
    assert topo.diameter() == 7


def test_ring_closes_the_chain():
    topo = Topology("ring", 8)
    assert (0, 7) in [tuple(sorted(e)) for e in topo.edges]
    assert topo.diameter() == 4


def test_mesh_dimensions_most_square():
    topo = Topology("mesh", 8)  # 2x4
    graph = _nx_graph(topo)
    assert graph.number_of_edges() == 2 * 4 * 2 - 2 - 4  # grid edge count


def test_torus_diameter_smaller_than_mesh():
    mesh = Topology("mesh", 16)
    torus = Topology("torus", 16)
    assert torus.diameter() < mesh.diameter()


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
@pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 8, 12, 16])
def test_paths_match_networkx_shortest_lengths(name, n):
    topo = Topology(name, n)
    graph = _nx_graph(topo)
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            assert topo.hops(src, dst) == lengths[src][dst]


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_path_is_valid_walk(name):
    topo = Topology(name, 8)
    edge_set = {tuple(sorted(e)) for e in topo.edges}
    for src in range(8):
        for dst in range(8):
            if src == dst:
                continue
            path = topo.path(src, dst)
            assert path[0] == src and path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert tuple(sorted((a, b))) in edge_set


@pytest.mark.parametrize("name", TOPOLOGY_NAMES)
def test_broadcast_tree_reaches_all_nodes_once(name):
    topo = Topology(name, 8)
    tree = topo.broadcast_tree(root=3)
    children = [child for _parent, child in tree]
    assert sorted(children + [3]) == list(range(8))
    # parents appear before their children (valid propagation order)
    seen = {3}
    for parent, child in tree:
        assert parent in seen
        seen.add(child)


def test_average_distance_orders_topologies():
    distances = {
        name: Topology(name, 8).average_distance()
        for name in ("half_ring", "ring", "torus")
    }
    assert distances["torus"] <= distances["ring"] <= distances["half_ring"]


def test_unknown_topology_rejected():
    with pytest.raises(ConfigError):
        build_edges("hypercube", 8)


def test_out_of_range_node_rejected():
    topo = Topology("ring", 4)
    with pytest.raises(RoutingError):
        topo.next_hop(0, 5)
    with pytest.raises(RoutingError):
        topo.next_hop(0, 0)


def test_single_node_topology():
    topo = Topology("half_ring", 1)
    assert topo.edges == []
    assert topo.diameter() == 0
    assert topo.broadcast_tree(0) == []


# -- degenerate sizes (documented fallbacks) ---------------------------------------


def test_ring_with_two_nodes_degrades_to_chain():
    # a 2-node "ring" would need a redundant parallel link; build_edges
    # documents the fallback to a chain
    assert build_edges("ring", 2) == [(0, 1)]
    assert build_edges("ring", 1) == []
    assert Topology("ring", 2).diameter() == 1


def test_ring_three_nodes_is_a_real_cycle():
    assert len(build_edges("ring", 3)) == 3


def test_torus_two_wide_dimensions_drop_wrap_edges():
    # 2x2 torus: both dims are 2-wide, so all wraps would duplicate mesh
    # edges — the torus must equal the mesh exactly
    assert build_edges("torus", 4) == build_edges("mesh", 4)
    # 2x4 torus: the 2-wide row dim drops its wrap; the 4-wide column dim
    # keeps it, adding exactly the two row-closing edges
    extra = set(build_edges("torus", 8)) - set(build_edges("mesh", 8))
    assert extra == {(0, 3), (4, 7)}


def test_ring_wrap_edge_is_canonical():
    topo = Topology("ring", 8)
    assert all(a < b for a, b in topo.edges)
    assert topo.edge_key(7, 0) == (0, 7)


# -- dynamic link state ------------------------------------------------------------


def test_set_link_state_recomputes_routes():
    topo = Topology("ring", 4)
    assert topo.hops(0, 3) == 1
    assert topo.set_link_state(0, 3, False) is True
    assert topo.hops(0, 3) == 3  # rerouted the long way around
    assert topo.set_link_state(0, 3, False) is False  # no change, no recompute
    assert topo.route_recomputes == 1
    assert topo.set_link_state(3, 0, True) is True  # endpoint order-insensitive
    assert topo.hops(0, 3) == 1


def test_link_state_on_nonexistent_edge_rejected():
    topo = Topology("half_ring", 4)
    with pytest.raises(RoutingError):
        topo.set_link_state(0, 2, False)
    with pytest.raises(RoutingError):
        topo.link_up(0, 2)


def test_partition_reachability_component_and_broadcast():
    topo = Topology("half_ring", 4)
    topo.set_link_state(1, 2, False)
    assert not topo.reachable(0, 3)
    assert topo.reachable(0, 1)
    assert topo.component(0) == {0, 1}
    assert topo.component(3) == {2, 3}
    with pytest.raises(RoutingError):
        topo.next_hop(0, 3)
    with pytest.raises(RoutingError):
        topo.broadcast_tree(0)
    partial = topo.broadcast_tree(0, require_all=False)
    assert [child for _parent, child in partial] == [1]


def test_live_edges_shrink_and_recover():
    topo = Topology("ring", 4)
    assert len(topo.live_edges) == 4
    topo.set_link_state(1, 2, False)
    assert len(topo.live_edges) == 3
    assert not topo.link_up(1, 2)
    topo.set_link_state(1, 2, True)
    assert len(topo.live_edges) == 4
