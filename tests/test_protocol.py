"""Tests for the DL protocol stack (packet codec, CRC, DLL, transactions)."""

import zlib

import pytest

from repro.errors import ProtocolError
from repro.protocol import (
    MAX_PAYLOAD,
    Command,
    Packet,
    TagAllocator,
    TransactionTable,
    crc32,
    iter_packets,
    make_link_pair,
    segment_payload,
    wire_bytes_for_transfer,
)
from repro.sim import Simulator
from repro.sim.time import ns


# -- CRC ------------------------------------------------------------------

def test_crc32_matches_zlib_golden():
    for data in [b"", b"a", b"hello world", bytes(range(256)) * 3]:
        assert crc32(data) == zlib.crc32(data)


def test_crc32_detects_single_bit_flip():
    data = b"dimm-link packet payload"
    reference = crc32(data)
    corrupted = bytes([data[0] ^ 0x40]) + data[1:]
    assert crc32(corrupted) != reference


# -- packet codec -----------------------------------------------------------

def test_packet_encode_decode_round_trip():
    packet = Packet(
        src=3, dst=12, cmd=Command.WRITE_REQ, addr=0xABCDE, tag=77,
        payload=b"\x11" * 48,
    )
    decoded = Packet.decode(packet.encode())
    assert (decoded.src, decoded.dst) == (3, 12)
    assert decoded.cmd == Command.WRITE_REQ
    assert decoded.addr == 0xABCDE
    assert decoded.tag == 77
    assert decoded.payload == b"\x11" * 48


def test_packet_decode_rejects_corruption():
    wire = bytearray(Packet(src=1, dst=2, cmd=Command.READ_REQ).encode())
    wire[4] ^= 0x01
    with pytest.raises(ProtocolError):
        Packet.decode(bytes(wire))


def test_read_request_is_single_flit():
    packet = Packet(src=0, dst=1, cmd=Command.READ_REQ, addr=0x1000)
    assert packet.payload_flits == 0
    assert packet.total_flits == 1
    assert packet.wire_bytes == 16


def test_max_payload_is_32_flits():
    packet = Packet.sized(0, 1, Command.WRITE_REQ, MAX_PAYLOAD)
    assert packet.payload_flits == 32
    assert packet.total_flits == 33


def test_oversized_payload_rejected():
    with pytest.raises(ProtocolError):
        Packet.sized(0, 1, Command.WRITE_REQ, MAX_PAYLOAD + 1)


def test_field_range_validation():
    with pytest.raises(ProtocolError):
        Packet(src=32, dst=0, cmd=Command.READ_REQ)
    with pytest.raises(ProtocolError):
        Packet(src=0, dst=0, cmd=Command.READ_REQ, addr=1 << 37)
    with pytest.raises(ProtocolError):
        Packet(src=0, dst=0, cmd=Command.READ_REQ, tag=256)


def test_broadcast_flag():
    assert Packet(src=0, dst=31, cmd=Command.READ_REQ).is_broadcast
    assert Packet(src=0, dst=1, cmd=Command.BROADCAST).is_broadcast
    assert not Packet(src=0, dst=1, cmd=Command.READ_REQ).is_broadcast


def test_segment_payload_shapes():
    assert segment_payload(0) == [0]
    assert segment_payload(100) == [100]
    assert segment_payload(256) == [256]
    assert segment_payload(600) == [256, 256, 88]
    with pytest.raises(ProtocolError):
        segment_payload(-1)


def test_wire_bytes_includes_per_packet_overhead():
    # 256 B payload -> 33 flits -> 528 wire bytes
    assert wire_bytes_for_transfer(256) == 33 * 16
    # two packets cost two headers
    assert wire_bytes_for_transfer(512) == 2 * 33 * 16


def test_iter_packets_offsets():
    chunks = list(iter_packets(0, 1, Command.WRITE_REQ, 600))
    assert [offset for offset, _ in chunks] == [0, 256, 512]
    assert [p.payload_bytes for _, p in chunks] == [256, 256, 88]


# -- tags and transactions ----------------------------------------------------

def test_tag_allocator_exhaustion_and_reuse():
    tags = TagAllocator(size=2)
    a, b = tags.allocate(), tags.allocate()
    assert {a, b} == {0, 1}
    with pytest.raises(ProtocolError):
        tags.allocate()
    tags.release(a)
    assert tags.allocate() == a


def test_tag_double_release_rejected():
    tags = TagAllocator(size=4)
    tag = tags.allocate()
    tags.release(tag)
    with pytest.raises(ProtocolError):
        tags.release(tag)


def test_transaction_match_by_peer_and_tag():
    sim = Simulator()
    table = TransactionTable(sim)
    tag, event = table.open(peer=5)
    table.complete(peer=5, tag=tag, value="data")
    sim.run()
    assert event.value == "data"
    assert table.outstanding == 0


def test_transaction_unknown_response_rejected():
    sim = Simulator()
    table = TransactionTable(sim)
    with pytest.raises(ProtocolError):
        table.complete(peer=1, tag=9)


# -- data link layer -----------------------------------------------------------

def test_dll_delivers_over_clean_link():
    sim = Simulator()
    side_a, side_b = make_link_pair(sim, latency_ps=ns(10))
    packet = Packet(src=0, dst=1, cmd=Command.WRITE_REQ, payload=b"x" * 32)
    side_a.send(packet)
    sim.run()
    assert len(side_b.received) == 1
    assert side_b.received[0].payload == b"x" * 32
    assert side_a.retransmissions == 0


def test_dll_recovers_from_bit_errors():
    sim = Simulator()
    side_a, side_b = make_link_pair(sim, latency_ps=ns(10), error_rate=0.3, seed=7)
    for i in range(20):
        side_a.send(Packet(src=0, dst=1, cmd=Command.WRITE_REQ, payload=bytes([i]) * 8))
    sim.run()
    payloads = sorted(p.payload[0] for p in side_b.received)
    assert payloads == list(range(20))  # all delivered exactly once
    assert side_a.retransmissions > 0   # and errors actually happened


def test_dll_credit_backpressure_limits_inflight():
    sim = Simulator()
    side_a, _side_b = make_link_pair(sim, latency_ps=ns(50), credits=2)
    for i in range(8):
        side_a.send(Packet(src=0, dst=1, cmd=Command.WRITE_REQ, payload=bytes([i])))
    sim.run()
    assert side_a.credits.peak_in_use <= 2
