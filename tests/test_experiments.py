"""Integration tests: every experiment harness runs and reproduces the
paper's qualitative shapes at the tiny size preset."""

import pytest

from repro.config import SystemConfig
from repro.experiments import (
    build_workload,
    fig01_idc_bandwidth,
    fig10_p2p,
    fig11_breakdown,
    fig12_broadcast,
    fig13_energy,
    fig14_sync,
    fig15_polling,
    fig16_bandwidth,
    fig17_topology,
    mapping_ablation,
    table1_bandwidth_model,
    table2_serdes,
)
from repro.errors import ConfigError


# -- workload registry -----------------------------------------------------------

def test_build_workload_all_names():
    for name in (
        "bfs", "sssp", "pagerank", "spmv", "hotspot", "kmeans", "nw",
        "ts_pow", "pagerank_bc", "sssp_bc", "spmv_bc",
    ):
        workload = build_workload(name, "tiny")
        assert workload.thread_factories(8, 4)


def test_build_workload_rejects_unknown():
    with pytest.raises(ConfigError):
        build_workload("matrix_inverse", "tiny")
    with pytest.raises(ConfigError):
        build_workload("bfs", "gigantic")


# -- Fig. 1 -----------------------------------------------------------------------

def test_fig1_bandwidth_grows_then_saturates():
    rows = fig01_idc_bandwidth.run(sizes=(4096, 65536), total_bytes=1 << 18)
    small, large = rows[0]["p2p_gbps"], rows[1]["p2p_gbps"]
    assert large > small          # bigger transfers amortise overheads
    assert large < 19.2           # but stay far below the channel peak


def test_fig1_aggregate_gap_is_large():
    gap = fig01_idc_bandwidth.aggregate_gap()
    assert gap["nmp_aggregate_gbps"] == pytest.approx(1228.8)
    assert gap["gap_x"] > 20      # paper: 51x


# -- Tables -----------------------------------------------------------------------

def test_table1_dimm_link_scales_and_bus_does_not():
    rows = table1_bandwidth_model.run()
    by_config = {r["config"]: r for r in rows}
    assert by_config["16D-8C"]["dimm_link"] > by_config["4D-2C"]["dimm_link"]
    assert by_config["16D-8C"]["dedicated_bus"] == by_config["4D-2C"]["dedicated_bus"]


def test_table2_grs_best_rate_shortest_reach():
    rows = {r["name"]: r for r in table2_serdes.run()}
    assert rows["grs"]["rate_gbps_per_pin"] == max(
        r["rate_gbps_per_pin"] for r in rows.values()
    )
    assert rows["grs"]["reach_mm"] == min(r["reach_mm"] for r in rows.values())


# -- Fig. 10 -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig10_rows():
    return fig10_p2p.run(
        size="tiny",
        config_names=("4D-2C", "16D-8C"),
        workload_names=("pagerank", "hotspot"),
    )


def test_fig10_dimm_link_beats_mcn(fig10_rows):
    stats = fig10_p2p.summary(fig10_rows)
    assert stats["dl_opt_over_mcn"] > 1.0


def test_fig10_rows_have_all_systems(fig10_rows):
    for row in fig10_rows:
        for system in fig10_p2p.SYSTEMS:
            assert float(row[system]) > 0
        assert 0 <= float(row["dl_opt_idc_ratio"]) <= 1


def test_fig10_mcn_has_higher_idc_stall_than_dl(fig10_rows):
    for row in fig10_rows:
        assert row["mcn_idc_ratio"] >= row["dl_opt_idc_ratio"] * 0.8


# -- Fig. 11 -----------------------------------------------------------------------

def test_fig11_shares_sum_to_one():
    rows = fig11_breakdown.run(size="tiny", workload_names=("pagerank",))
    for row in rows:
        total = row["local_share"] + row["intra_group_share"] + row["forwarded_share"]
        assert total == pytest.approx(1.0)
        assert row["local_share"] > row["forwarded_share"]


# -- Fig. 12 -----------------------------------------------------------------------

def test_fig12_broadcast_ordering():
    rows = fig12_broadcast.run(
        size="tiny", dpc_configs=(("2DPC", "16D-8C"),),
        workload_names=("spmv_bc",),
    )
    stats = fig12_broadcast.summary(rows)
    assert stats["dl_over_mcn_bc"] > 1.0       # DL beats MCN-BC
    assert stats["dl_over_abc"] > 1.0          # and ABC-DIMM
    assert stats["aim_over_dl"] > 1.0          # AIM-BC's ideal bus wins


# -- Fig. 13 -----------------------------------------------------------------------

def test_fig13_energy_mcn_worst():
    rows = fig13_energy.run(size="tiny", workload_names=("pagerank",))
    stats = fig13_energy.summary(rows)
    assert stats["mcn_over_dl_energy"] > 1.0
    assert stats["aim_has_lowest_idc_energy"] == 1.0


# -- Fig. 14 -----------------------------------------------------------------------

def test_fig14_hier_wins_and_gap_grows_with_frequency():
    rows = fig14_sync.run_intervals(intervals=(500, 5000), barriers=5)
    for row in rows:
        assert row["DL-Hier"] <= row["MCN"]
        assert row["DL-Hier"] <= row["DL-Central"]
    tight = fig14_sync.speedups_at(rows, 500)
    loose = fig14_sync.speedups_at(rows, 5000)
    assert tight["MCN"] > loose["MCN"]


def test_fig14_tspow_dl_beats_mcn():
    results = fig14_sync.run_tspow(size="tiny")
    assert results["DL-Hier"] < results["MCN"]


# -- Fig. 15 -----------------------------------------------------------------------

def test_fig15_polling_shapes():
    rows = fig15_polling.run(size="tiny", workload_names=("pagerank",))
    stats = fig15_polling.summary(rows)
    assert stats["baseline"]["mean_bus_occupancy"] == max(
        s["mean_bus_occupancy"] for s in stats.values()
    )
    assert stats["proxy"]["time_geomean_us"] == min(
        s["time_geomean_us"] for s in stats.values()
    )
    assert (
        stats["proxy+interrupt"]["mean_bus_occupancy"]
        < stats["baseline"]["mean_bus_occupancy"]
    )


# -- Fig. 16 -----------------------------------------------------------------------

def test_fig16_bandwidth_helps_more_at_scale():
    rows = fig16_bandwidth.run(
        size="small",
        bandwidths=(4.0, 64.0),
        config_names=("4D-2C", "16D-8C"),
        workload_names=("pagerank",),
    )
    small_gain = fig16_bandwidth.scaling_gain(rows, "4D-2C")
    large_gain = fig16_bandwidth.scaling_gain(rows, "16D-8C")
    assert large_gain > small_gain >= 1.0


# -- Fig. 17 -----------------------------------------------------------------------

def test_fig17_topologies_run_and_torus_not_worse():
    rows = fig17_topology.run(size="tiny", workload_names=("pagerank",))
    gains = fig17_topology.speedups_over_half_ring(rows)
    assert gains["half_ring"] == pytest.approx(1.0)
    assert gains["torus"] >= 0.98  # never meaningfully worse


# -- mapping ablation ----------------------------------------------------------------

def test_mapping_ablation_recovers_locality():
    results = mapping_ablation.run(size="tiny", workload_names=("pagerank",))
    row = results["pagerank"]
    assert row["speedup"] > 1.2
    assert row["optimized_cost"] < row["random_cost"]
