"""Failure-injection tests: lossy DL links with DLL retries."""

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.errors import RoutingError
from repro.interconnect.network import PacketNetwork
from repro.interconnect.topology import Topology
from repro.nmp.system import NMPSystem
from repro.sim import Simulator, StatRegistry
from repro.sim.time import ns
from repro.workloads.microbench import UniformRandom


def _network(error_rate):
    sim = Simulator()
    stats = StatRegistry()
    network = PacketNetwork(
        sim, Topology("half_ring", 4), 25.0, ns(10), ns(2), stats,
        error_rate=error_rate,
    )
    return sim, stats, network


def test_invalid_error_rate_rejected():
    with pytest.raises(RoutingError):
        _network(1.5)


def test_clean_link_never_retransmits():
    sim, stats, network = _network(0.0)
    for _ in range(50):
        network.send(0, 3, 64)
    sim.run()
    assert stats.get("dl.retransmissions") == 0


def test_lossy_link_retransmits_roughly_at_rate():
    # retransmissions can themselves fail CRC, so the expected number of
    # retries per successful hop is p/(1-p), not p
    rate = 0.2
    sim, stats, network = _network(rate)
    for _ in range(200):
        network.send(0, 3, 64)
    sim.run()
    hops = stats.get("dl.hops")
    retries = stats.get("dl.retransmissions")
    assert retries > 0
    assert retries / hops == pytest.approx(rate / (1 - rate), abs=0.08)


def test_errors_slow_delivery_but_never_lose_packets():
    clean_time = lossy_time = None
    for rate in (0.0, 0.3):
        sim, stats, network = _network(rate)
        done = []
        for _ in range(50):
            network.send(0, 3, 256).add_callback(lambda ev: done.append(1))
        sim.run()
        assert len(done) == 50  # reliable delivery either way
        if rate == 0.0:
            clean_time = sim.now
        else:
            lossy_time = sim.now
    assert lossy_time > clean_time


def test_deterministic_error_pattern():
    def run():
        sim, stats, network = _network(0.25)
        for _ in range(100):
            network.send(0, 2, 64)
        sim.run()
        return stats.get("dl.retransmissions"), sim.now

    assert run() == run()


def test_system_level_run_survives_lossy_links():
    config = SystemConfig.named("8D-4C")
    config.link = dataclasses.replace(config.link, error_rate=0.1)
    system = NMPSystem(config, idc="dimm_link")
    workload = UniformRandom(ops_per_thread=30, remote_fraction=0.5, seed=9)
    result = system.run(workload.thread_factories(32, 8))
    assert result.time_ps > 0
    assert result.counter("dl.retransmissions") > 0


def test_lossy_system_slower_than_clean():
    def run(rate):
        config = SystemConfig.named("8D-4C")
        config.link = dataclasses.replace(config.link, error_rate=rate)
        system = NMPSystem(config, idc="dimm_link")
        workload = UniformRandom(ops_per_thread=30, remote_fraction=0.6, seed=9)
        return system.run(workload.thread_factories(32, 8)).time_ps

    assert run(0.2) > run(0.0)


def test_retransmission_itself_subject_to_crc_failure():
    """Regression: the old model assumed the (single) retransmission was
    always error-free.  With per-attempt error dice the expected retries
    per delivered hop is p/(1-p); at p=0.5 that is 1.0, which is only
    reachable if retransmitted frames can fail CRC again."""
    sim, stats, network = _network(0.5)
    network.max_retries = 64  # measuring the retry ratio, not exhaustion
    for _ in range(300):
        network.send(0, 1, 64)
    sim.run()
    ratio = stats.get("dl.retransmissions") / stats.get("dl.hops")
    assert ratio > 0.7  # impossible under retransmit-never-fails (cap 0.5)
