"""Fabric chaos suite: the crash-safety acceptance tests.

Two families:

* **Fault-point recovery** — for every named crash point in the
  journal/lease protocol, simulate a worker dying at exactly that
  instruction and assert a fresh worker drives the spec to ``done`` with
  the correct, byte-stable result.
* **Subprocess chaos** — real worker processes against a shared broker
  directory; one is SIGKILLed mid-spec (and one hard-exits mid-journal
  write via the env fault schedule), and the surviving workers must
  finish the sweep with results byte-identical to a serial run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.runner import SweepRunner
from repro.fabric import faultpoints
from repro.fabric.broker import BrokerConfig, WorkBroker
from repro.fabric.faultpoints import InjectedFaultError
from repro.fabric.worker import Worker
from repro.results_cache import ResultsCache
from tests.test_fabric import grid
from tests.test_results_cache import fake_result

REPO = Path(__file__).resolve().parent.parent

#: short enough that reclaim paths run in test time, long enough that a
#: healthy heartbeat never lapses.
TTL_S = 0.15


@pytest.fixture(autouse=True)
def _clean_faultpoints():
    faultpoints.reset()
    yield
    faultpoints.reset()


def open_broker(root):
    return WorkBroker(
        root,
        config=BrokerConfig(
            retries=5, lease_ttl_s=TTL_S, backoff_s=0.01, backoff_cap_s=0.05
        ),
    )


def drive_until_drained(broker, execute, timeout_s=30.0):
    """A recovery worker: step/poll until no live work remains."""
    worker = Worker(
        broker, execute=execute, poll_interval_s=0.01, heartbeat_interval_s=0.05
    )
    deadline = time.monotonic() + timeout_s
    while not broker.drained():
        assert time.monotonic() < deadline, "recovery did not converge"
        if not worker.step():
            time.sleep(0.02)
    return worker


class OnceCrashy:
    """Fails the first execution only (provokes the failure path)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, spec):
        self.calls += 1
        if self.calls == 1:
            raise RuntimeError("first attempt crashes")
        return fake_result(spec)


# -- crash-at-every-fault-point recovery ---------------------------------------------


def _provoke_submit(broker, spec, execute):
    broker.submit([spec])


def _provoke_step(broker, spec, execute):
    broker.submit([spec])
    Worker(broker, execute=execute, heartbeat_interval_s=5.0).step()


def _provoke_renew(broker, spec, execute):
    broker.submit([spec])
    broker.claim("victim")
    broker.leases.renew(spec.cache_key(), "victim")


def _provoke_steal(broker, spec, execute):
    broker.submit([spec])
    broker.claim("victim")  # then the victim "dies" without heartbeating
    time.sleep(TTL_S + 0.05)
    broker.claim("janitor")


#: how to drive normal operation into each armed crash point.
PROVOKE = {
    "journal.enqueue.before_link": _provoke_submit,
    "journal.enqueue.after_link": _provoke_submit,
    "journal.append.partial": _provoke_step,
    "journal.append.before_write": _provoke_step,
    "journal.append.before_fsync": _provoke_step,
    "journal.append.after_fsync": _provoke_step,
    "lease.claim.after_create": _provoke_step,
    "lease.steal.after_rename": _provoke_steal,
    "lease.renew.before_write": _provoke_renew,
    "lease.release.before_unlink": _provoke_step,
    "broker.claim.after_lease": _provoke_step,
    "broker.complete.before_done": _provoke_step,
    "broker.fail.before_transition": _provoke_step,
    "worker.publish.after_cache_put": _provoke_step,
}


def test_every_fault_point_has_a_provoker():
    # the network points have their own provokers in test_service_chaos
    assert set(PROVOKE) == set(faultpoints.FS_POINTS)


@pytest.mark.parametrize("point", faultpoints.FS_POINTS)
def test_crash_at_any_fault_point_recovers(tmp_path, point):
    """A worker dying at *any* protocol instruction loses no work: after
    a restart the spec reaches ``done`` with the correct result."""
    spec = grid(1)[0]
    key = spec.cache_key()
    execute = (
        OnceCrashy() if point == "broker.fail.before_transition" else fake_result
    )
    broker = open_broker(tmp_path / "broker")

    faultpoints.arm(point, mode="raise")
    with pytest.raises(InjectedFaultError):
        PROVOKE[point](broker, spec, execute)
    faultpoints.reset()

    # "restart": a fresh broker handle on the same directory must replay
    # a consistent queue, resubmit idempotently, and drain to done
    recovered = open_broker(tmp_path / "broker")
    recovered.submit([spec])
    drive_until_drained(recovered, execute)
    record = recovered.records()[key]
    assert record.state == "done"
    assert recovered.cache.get(key) == fake_result(spec)
    assert recovered.counts()["total"] == 1  # never duplicated the spec


def test_torn_journal_write_never_loses_prior_state(tmp_path):
    """The ``partial`` point leaves real half-written bytes on disk; the
    journal must fold to the pre-crash state and later appends must not
    concatenate onto the torn fragment."""
    spec = grid(1)[0]
    key = spec.cache_key()
    broker = open_broker(tmp_path / "broker")
    broker.submit([spec])
    faultpoints.arm("journal.append.partial")
    with pytest.raises(InjectedFaultError):
        broker.claim("victim")  # the "leased" transition tears mid-line
    faultpoints.reset()
    record = broker.records()[key]
    assert record.state == "pending"  # the torn transition never happened
    drive_until_drained(broker, fake_result)
    assert broker.records()[key].state == "done"


# -- subprocess chaos ----------------------------------------------------------------

WORKER_SCRIPT = """\
import sys, time

from repro.fabric.broker import WorkBroker
from repro.fabric.worker import Worker
from tests.test_results_cache import fake_result

def execute(spec):
    time.sleep(float(sys.argv[2]))
    return fake_result(spec)

worker = Worker(WorkBroker(sys.argv[1]), execute=execute, poll_interval_s=0.05)
worker.run()
"""


def spawn_worker(script, broker_root, sleep_s, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.update(extra_env or {})
    return subprocess.Popen(
        [sys.executable, str(script), str(broker_root), str(sleep_s)],
        cwd=REPO,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def wait_for_leased_record(broker, pid, timeout_s=20.0):
    """Block until the journal shows a spec leased by process ``pid``
    (claim fully journaled — killing now must go through reclaim)."""
    needle = f"-{pid}-"
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for key, record in broker.records().items():
            if record.state == "leased" and needle in record.worker:
                return key
        time.sleep(0.01)
    raise AssertionError(f"worker {pid} never journaled a lease")


def serial_reference(specs, cache_dir):
    """The ``--jobs 1`` baseline the fabric must match byte-for-byte."""
    runner = SweepRunner(
        jobs=1, cache=ResultsCache(cache_dir), execute=fake_result
    )
    runner.run(specs)
    return runner.cache


def test_three_workers_one_sigkilled_matches_serial(tmp_path):
    """The acceptance bar: 3 worker processes, one SIGKILLed mid-spec;
    the sweep completes and every cache entry is byte-identical to a
    serial ``--jobs 1`` run."""
    specs = grid(8)
    broker = WorkBroker(
        tmp_path / "broker",
        config=BrokerConfig(retries=5, lease_ttl_s=0.6, backoff_s=0.01),
    )
    report = broker.submit(specs)
    assert report.enqueued == len(specs)

    script = tmp_path / "worker.py"
    script.write_text(WORKER_SCRIPT)
    # the victim's specs run 4x longer than the survivors', so the kill
    # lands squarely mid-execution of its freshly journaled claim
    victim = spawn_worker(script, broker.root, sleep_s=1.0)
    survivors = [spawn_worker(script, broker.root, sleep_s=0.25) for _ in range(2)]
    try:
        victim_key = wait_for_leased_record(broker, victim.pid)
        os.kill(victim.pid, signal.SIGKILL)
        assert victim.wait(timeout=20) == -signal.SIGKILL
        for proc in survivors:
            assert proc.wait(timeout=120) == 0
    finally:
        for proc in [victim] + survivors:
            if proc.poll() is None:
                proc.kill()

    assert broker.drained()
    counts = broker.counts()
    assert counts["done"] == len(specs) and counts["dead"] == 0
    # the victim's spec was reclaimed via lease expiry, not lost
    assert "lease expired" in broker.records()[victim_key].error
    # byte-identical to serial: same keys, same file content
    serial = serial_reference(specs, tmp_path / "serial_cache")
    for spec in specs:
        key = spec.cache_key()
        assert broker.cache.path_for(key).read_bytes() == (
            serial.path_for(key).read_bytes()
        )


def test_worker_hard_exit_mid_journal_write_is_recovered(tmp_path):
    """A worker that dies with ``os._exit`` *inside* a journal append
    (no cleanup, no finally blocks) must not wedge the sweep: a clean
    worker reclaims its lease and finishes."""
    specs = grid(3)
    broker = WorkBroker(
        tmp_path / "broker",
        config=BrokerConfig(retries=5, lease_ttl_s=0.4, backoff_s=0.01),
    )
    broker.submit(specs)

    script = tmp_path / "worker.py"
    script.write_text(WORKER_SCRIPT)
    crasher = spawn_worker(
        script,
        broker.root,
        sleep_s=0.05,
        extra_env={faultpoints.ENV_VAR: "journal.append.before_fsync:exit"},
    )
    assert crasher.wait(timeout=60) == faultpoints.EXIT_STATUS
    # the crasher died holding a lease, mid-append of its "leased" line
    cleaner = spawn_worker(script, broker.root, sleep_s=0.05)
    assert cleaner.wait(timeout=120) == 0

    counts = broker.counts()
    assert counts["done"] == len(specs) and counts["dead"] == 0
    for spec in specs:
        assert broker.cache.get(spec.cache_key()) == fake_result(spec)
