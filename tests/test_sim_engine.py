"""Tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.time import ns


def test_schedule_order_is_time_then_fifo():
    sim = Simulator()
    log = []
    sim.schedule(10, lambda _: log.append("b"))
    sim.schedule(5, lambda _: log.append("a"))
    sim.schedule(10, lambda _: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(ns(7), lambda _: seen.append(sim.now))
    sim.run()
    assert seen == [ns(7)]
    assert sim.now == ns(7)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda _: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda _: fired.append(True))
    assert sim.run(until=50) == 50
    assert not fired
    sim.run()
    assert fired


def test_run_until_advances_clock_when_queue_drains_early():
    # regression: if the queue emptied before the horizon, ``now`` stayed at
    # the last event time, making bytes/elapsed denominators inconsistent
    # with runs where the horizon cut the queue off
    sim = Simulator()
    sim.schedule(10, lambda _: None)
    assert sim.run(until=100) == 100
    assert sim.now == 100


def test_run_until_advances_clock_on_empty_queue():
    sim = Simulator()
    assert sim.run(until=75) == 75
    assert sim.now == 75


def test_run_until_never_moves_clock_backwards():
    sim = Simulator()
    sim.schedule(50, lambda _: None)
    sim.run()
    assert sim.now == 50
    assert sim.run(until=20) == 50
    assert sim.now == 50


def test_process_sleep_and_return_value():
    sim = Simulator()

    def proc():
        yield 25
        yield 25
        return "done"

    assert sim.run_process(proc()) == "done"
    assert sim.now == 50


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    gate = sim.event("gate")
    sim.schedule(30, lambda _: gate.succeed(42))

    def proc():
        value = yield gate
        return value

    assert sim.run_process(proc()) == 42
    assert sim.now == 30


def test_process_waits_on_other_process():
    sim = Simulator()

    def child():
        yield 10
        return "child-value"

    def parent():
        value = yield sim.process(child())
        return value

    assert sim.run_process(parent()) == "child-value"


def test_allof_waits_for_every_child():
    sim = Simulator()

    def child(delay, tag):
        yield delay
        return tag

    def parent():
        procs = [sim.process(child(d, i)) for i, d in enumerate([30, 10, 20])]
        results = yield AllOf(procs)
        return results

    assert sim.run_process(parent()) == [0, 1, 2]
    assert sim.now == 30


def test_allof_empty_resumes_immediately():
    sim = Simulator()

    def parent():
        results = yield AllOf([])
        return results

    assert sim.run_process(parent()) == []


def test_event_double_succeed_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_yield_on_already_triggered_event():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")

    def proc():
        value = yield event
        return value

    assert sim.run_process(proc()) == "early"


def test_timeout_event_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(15, value="tick")
        return value

    assert sim.run_process(proc()) == "tick"
    assert sim.now == 15


def test_max_events_guard():
    sim = Simulator()

    def rearm(_):
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_deadlocked_process_detected():
    sim = Simulator()

    def proc():
        yield sim.event("never")

    proc_handle = sim.process(proc())
    sim.run()
    assert not proc_handle.finished
    with pytest.raises(SimulationError):
        sim.run_process(iter([sim.event("never2")].__iter__()) if False else _stuck(sim))


def _stuck(sim):
    yield sim.event("never3")


def test_yielding_garbage_raises():
    sim = Simulator()

    def proc():
        yield "not-a-waitable"

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


# -- failure, cancellation, and AnyOf semantics ------------------------------------


def test_event_fail_throws_into_waiter():
    sim = Simulator()
    gate = sim.event("gate")
    sim.schedule(10, lambda _: gate.fail(ValueError("boom")))

    def proc():
        try:
            yield gate
        except ValueError as exc:
            return f"recovered:{exc}"

    assert sim.run_process(proc()) == "recovered:boom"
    assert sim.now == 10
    assert gate.failed


def test_event_fail_without_waiter_raises_at_fail_site():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.event("gate").fail(ValueError("unhandled"))


def test_event_fail_with_non_exception_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not-an-exception")


def test_process_failure_propagates_out_of_run_without_waiter():
    sim = Simulator()

    def proc():
        yield 5
        raise RuntimeError("loud")

    sim.process(proc())
    with pytest.raises(RuntimeError):
        sim.run()


def test_process_failure_delivered_to_waiting_parent():
    sim = Simulator()

    def child():
        yield 5
        raise RuntimeError("child died")

    def parent():
        try:
            yield sim.process(child())
        except RuntimeError:
            return "handled"

    assert sim.run_process(parent()) == "handled"


def test_anyof_first_event_wins_and_losers_are_ignored():
    sim = Simulator()
    def proc():
        value = yield AnyOf([sim.timeout(50, "slow"), sim.timeout(10, "fast")])
        return value

    assert sim.run_process(proc()) == "fast"


def test_anyof_timeout_pattern_guards_a_hung_event():
    sim = Simulator()
    def proc():
        result = yield AnyOf([sim.event("never-acked"), sim.timeout(100, "timeout")])
        return result

    assert sim.run_process(proc()) == "timeout"
    assert sim.now == 100


def test_anyof_needs_children():
    with pytest.raises(SimulationError):
        AnyOf([])


def test_allof_child_failure_throws_first_failure():
    sim = Simulator()
    bad = sim.event("bad")
    sim.schedule(5, lambda _: bad.fail(ValueError("first")))

    def proc():
        try:
            yield AllOf([sim.timeout(50), bad])
        except ValueError:
            return sim.now

    assert sim.run_process(proc()) == 5


def test_interrupt_cancels_pending_sleep():
    sim = Simulator()

    def proc():
        try:
            yield 1000
        except TimeoutError:
            return sim.now

    handle = sim.process(proc())
    sim.schedule(100, lambda _: handle.interrupt(TimeoutError()))
    sim.run()
    assert handle.value == 100
    # the stale 1000ps wakeup must not resume the finished process
    assert sim.now >= 1000 or handle.finished


def test_interrupt_after_finish_is_ignored():
    sim = Simulator()

    def proc():
        yield 10
        return "ok"

    handle = sim.process(proc())
    sim.schedule(50, lambda _: handle.interrupt(RuntimeError("late")))
    sim.run()
    assert handle.value == "ok"


def test_interrupt_with_non_exception_rejected():
    sim = Simulator()

    def proc():
        yield 10

    handle = sim.process(proc())
    with pytest.raises(SimulationError):
        handle.interrupt("oops")


# -- stall watchdog / deadlock diagnosis ---------------------------------------------


def test_run_process_deadlock_error_names_blocked_processes():
    from repro.errors import DeadlockError

    sim = Simulator()

    def stuck():
        yield sim.event("never-fires")

    with pytest.raises(DeadlockError) as excinfo:
        sim.run_process(stuck(), name="stuck-proc")
    err = excinfo.value
    assert ("stuck-proc", "event 'never-fires'") in err.blocked
    assert "stuck-proc" in str(err)
    assert "never-fires" in str(err)


def test_blocked_processes_describe_their_wait_targets():
    sim = Simulator()

    def on_event():
        yield sim.event("ack")

    def on_delay():
        yield ns(5)

    sim.process(on_event(), name="waiter")
    sim.process(on_delay(), name="sleeper")
    sim.run(until=0)  # let both reach their first yield, nothing fires
    blocked = dict(sim.blocked_processes())
    assert blocked["waiter"] == "event 'ack'"
    assert blocked["sleeper"].startswith("delay ")


def test_wall_clock_stall_raises_with_snapshot():
    from repro.errors import SimStallError
    from repro.sim import StallWatchdog

    sim = Simulator()

    def spin():
        while True:
            yield 1

    sim.process(spin(), name="spinner")
    watchdog = StallWatchdog(wall_clock_limit_s=0.05, check_interval_events=64)
    with pytest.raises(SimStallError) as excinfo:
        sim.run(watchdog=watchdog)
    snapshot = excinfo.value.snapshot
    assert snapshot["time_ps"] == sim.now
    assert snapshot["events_processed"] > 0
    assert ("spinner", "delay 1ps") in snapshot["blocked"]


def test_deadlock_detected_on_queue_drain_when_enabled():
    from repro.errors import DeadlockError
    from repro.sim import StallWatchdog

    sim = Simulator()

    def stuck():
        yield sim.event("missing-ack")

    sim.process(stuck(), name="orphan")
    with pytest.raises(DeadlockError) as excinfo:
        sim.run(watchdog=StallWatchdog(detect_deadlock=True))
    assert ("orphan", "event 'missing-ack'") in excinfo.value.blocked


def test_drain_without_blocked_processes_passes_deadlock_detection():
    from repro.sim import StallWatchdog

    sim = Simulator()

    def quick():
        yield 5
        return "done"

    handle = sim.process(quick())
    sim.run(watchdog=StallWatchdog(detect_deadlock=True))
    assert handle.value == "done"


def test_process_wide_watchdog_install_and_clear():
    from repro.errors import SimStallError
    from repro.sim import (
        StallWatchdog,
        active_watchdog,
        clear_watchdog,
        install_watchdog,
    )

    sim = Simulator()

    def spin():
        while True:
            yield 1

    sim.process(spin(), name="spinner")
    install_watchdog(StallWatchdog(wall_clock_limit_s=0.05, check_interval_events=64))
    try:
        assert active_watchdog() is not None
        with pytest.raises(SimStallError):
            sim.run()  # picks up the installed watchdog implicitly
    finally:
        clear_watchdog()
    assert active_watchdog() is None


def test_watchdog_rejects_nonpositive_budget():
    from repro.sim import StallWatchdog

    with pytest.raises(SimulationError):
        StallWatchdog(wall_clock_limit_s=0.0)


def test_max_events_exact_budget_completes():
    # a run finishing in exactly max_events events is within budget: the
    # guard fires only when one MORE in-horizon event would exceed it
    for legacy in (False, True):
        sim = Simulator(legacy=legacy)
        fired = []
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        assert sim.run(max_events=10) == 10
        assert fired == list(range(10))

        sim = Simulator(legacy=legacy)
        for i in range(10):
            sim.schedule(i + 1, fired.append, i)
        with pytest.raises(SimulationError):
            sim.run(max_events=9)
