"""Tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, Simulator
from repro.sim.time import ns


def test_schedule_order_is_time_then_fifo():
    sim = Simulator()
    log = []
    sim.schedule(10, lambda _: log.append("b"))
    sim.schedule(5, lambda _: log.append("a"))
    sim.schedule(10, lambda _: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(ns(7), lambda _: seen.append(sim.now))
    sim.run()
    assert seen == [ns(7)]
    assert sim.now == ns(7)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda _: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda _: fired.append(True))
    assert sim.run(until=50) == 50
    assert not fired
    sim.run()
    assert fired


def test_process_sleep_and_return_value():
    sim = Simulator()

    def proc():
        yield 25
        yield 25
        return "done"

    assert sim.run_process(proc()) == "done"
    assert sim.now == 50


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    gate = sim.event("gate")
    sim.schedule(30, lambda _: gate.succeed(42))

    def proc():
        value = yield gate
        return value

    assert sim.run_process(proc()) == 42
    assert sim.now == 30


def test_process_waits_on_other_process():
    sim = Simulator()

    def child():
        yield 10
        return "child-value"

    def parent():
        value = yield sim.process(child())
        return value

    assert sim.run_process(parent()) == "child-value"


def test_allof_waits_for_every_child():
    sim = Simulator()

    def child(delay, tag):
        yield delay
        return tag

    def parent():
        procs = [sim.process(child(d, i)) for i, d in enumerate([30, 10, 20])]
        results = yield AllOf(procs)
        return results

    assert sim.run_process(parent()) == [0, 1, 2]
    assert sim.now == 30


def test_allof_empty_resumes_immediately():
    sim = Simulator()

    def parent():
        results = yield AllOf([])
        return results

    assert sim.run_process(parent()) == []


def test_event_double_succeed_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_yield_on_already_triggered_event():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")

    def proc():
        value = yield event
        return value

    assert sim.run_process(proc()) == "early"


def test_timeout_event_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(15, value="tick")
        return value

    assert sim.run_process(proc()) == "tick"
    assert sim.now == 15


def test_max_events_guard():
    sim = Simulator()

    def rearm(_):
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_deadlocked_process_detected():
    sim = Simulator()

    def proc():
        yield sim.event("never")

    proc_handle = sim.process(proc())
    sim.run()
    assert not proc_handle.finished
    with pytest.raises(SimulationError):
        sim.run_process(iter([sim.event("never2")].__iter__()) if False else _stuck(sim))


def _stuck(sim):
    yield sim.event("never3")


def test_yielding_garbage_raises():
    sim = Simulator()

    def proc():
        yield "not-a-waitable"

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()
