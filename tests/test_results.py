"""Tests for RunResult derived metrics (repro.nmp.results)."""

import pytest

from repro.nmp.results import RunResult
from repro.sim import StatRegistry
from repro.sim.time import us


def _result(counters=None, time_ps=us(10), profile_ps=0, bus=None):
    stats = StatRegistry()
    for name, value in (counters or {}).items():
        stats.add(name, value)
    return RunResult(
        system_name="16D-8C",
        mechanism="dimm_link",
        workload="w",
        time_ps=time_ps,
        thread_end_ps=[time_ps],
        stats=stats,
        bus_occupancy=bus or [],
        profile_ps=profile_ps,
    )


def test_total_includes_profiling():
    result = _result(time_ps=us(10), profile_ps=us(1))
    assert result.total_ps == us(11)
    assert result.time_us == pytest.approx(10.0)
    assert result.time_ms == pytest.approx(0.01)


def test_speedup_over_uses_totals():
    slow = _result(time_ps=us(20))
    fast = _result(time_ps=us(5), profile_ps=us(5))
    assert fast.speedup_over(slow) == pytest.approx(2.0)


def test_nonoverlapped_ratio():
    result = _result(
        {
            "dimm0.core.thread_ps": 100.0,
            "dimm0.core.stall_remote_ps": 30.0,
            "dimm0.core.stall_sync_ps": 20.0,
        }
    )
    assert result.nonoverlapped_idc_ratio == pytest.approx(0.5)
    assert _result().nonoverlapped_idc_ratio == 0.0


def test_traffic_breakdown_and_forwarded_fraction():
    result = _result(
        {
            "dimm0.idc.local_bytes": 700.0,
            "idc.intra_group_bytes": 200.0,
            "idc.forwarded_bytes": 100.0,
        }
    )
    assert result.traffic_breakdown == {
        "local": 700.0,
        "intra_group": 200.0,
        "forwarded": 100.0,
    }
    assert result.forwarded_fraction == pytest.approx(100 / 300)


def test_forwarded_fraction_no_idc():
    assert _result({"dimm0.idc.local_bytes": 10.0}).forwarded_fraction == 0.0


def test_dedicated_bus_counts_as_non_host_idc():
    result = _result({"idc.dedicated_bus_bytes": 400.0, "idc.forwarded_bytes": 100.0})
    assert result.forwarded_fraction == pytest.approx(0.2)


def test_mean_bus_occupancy():
    assert _result(bus=[0.1, 0.3]).mean_bus_occupancy == pytest.approx(0.2)
    assert _result().mean_bus_occupancy == 0.0


def test_counter_aggregates_scopes():
    result = _result({"dimm0.x.y": 1.0, "dimm1.x.y": 2.0, "x.y": 4.0})
    assert result.counter("x.y") == 7.0
