"""Benchmark: regenerate Fig. 10 (P2P speedups) at tiny scale."""

from repro.experiments import fig10_p2p


def test_fig10_grid(once):
    rows = once(
        fig10_p2p.run,
        size="tiny",
        config_names=("4D-2C", "16D-8C"),
        workload_names=("pagerank", "hotspot"),
    )
    stats = fig10_p2p.summary(rows)
    # who wins: DIMM-Link-opt over CPU-forwarding, on geomean
    assert stats["dl_opt_over_mcn"] > 1.0
