"""Benchmark: regenerate Fig. 1 (CPU-forwarded IDC bandwidth)."""

from repro.experiments import fig01_idc_bandwidth


def test_fig01_p2p_sweep(once):
    rows = once(fig01_idc_bandwidth.run, sizes=(4096, 65536), total_bytes=1 << 18)
    assert rows[-1]["p2p_gbps"] > rows[0]["p2p_gbps"]
    assert rows[-1]["p2p_gbps"] < 19.2


def test_fig01_aggregate_gap(once):
    gap = once(fig01_idc_bandwidth.aggregate_gap)
    assert gap["gap_x"] > 20
