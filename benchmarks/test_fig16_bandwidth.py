"""Benchmark: regenerate Fig. 16 (link bandwidth sweep).

Runs at the ``small`` size: link-bandwidth sensitivity only appears once
the DL network actually carries volume (at ``tiny`` the runs are
latency-dominated and the sweep is flat).
"""

from repro.experiments import fig16_bandwidth


def test_fig16_sweep(once):
    rows = once(
        fig16_bandwidth.run,
        size="small",
        bandwidths=(4.0, 64.0),
        config_names=("16D-8C",),
        workload_names=("pagerank",),
    )
    assert fig16_bandwidth.scaling_gain(rows, "16D-8C") > 1.2
