"""Benchmarks: regenerate Table I and Table II."""

from repro.experiments import table1_bandwidth_model, table2_serdes


def test_table1_bandwidth_model(once):
    rows = once(table1_bandwidth_model.run)
    by_config = {r["config"]: r for r in rows}
    assert by_config["16D-8C"]["dimm_link"] > by_config["16D-8C"]["dedicated_bus"]


def test_table2_serdes(once):
    rows = once(table2_serdes.run)
    assert {r["name"] for r in rows} == {"grs", "sma_cable", "ribbon_cable"}
