"""Microbenchmarks of the substrates themselves.

These track the simulator's own performance (event rate, DRAM model
throughput, packet codec, CRC) and check the paper's Sec. IV-B claim that
the min-cost max-flow placement solves 64 threads x 16 DIMMs in
milliseconds.
"""

import numpy as np

from repro.config import SystemConfig
from repro.dram.module import DRAMModule
from repro.dram.timing import DDR4_2400_LRDIMM
from repro.mapping.placement import distance_aware_placement
from repro.protocol.crc import crc32
from repro.protocol.packet import Command, Packet
from repro.sim import Simulator, StatRegistry


def test_engine_event_rate(benchmark):
    """Raw event throughput of the simulation kernel."""

    def drive():
        sim = Simulator()

        def ping(_):
            if sim.now < 1_000_000:
                sim.schedule(10, ping)

        for _ in range(16):
            sim.schedule(0, ping)
        sim.run()
        return sim.now

    assert benchmark(drive) == 1_000_000


def test_dram_line_access_rate(benchmark):
    """Per-line DRAM model cost (bank FSM + refresh + bus arithmetic)."""

    def drive():
        sim = Simulator()
        dram = DRAMModule(sim, DDR4_2400_LRDIMM, 2, StatRegistry())
        for line in range(2000):
            dram.access(line * 64, 64, is_write=False)
        sim.run()
        return sim.now

    assert benchmark(drive) > 0


def test_packet_codec_throughput(benchmark):
    """Encode+decode of a max-payload packet."""
    packet = Packet(src=1, dst=2, cmd=Command.WRITE_REQ, payload=b"\xab" * 256)

    def codec():
        return Packet.decode(packet.encode())

    decoded = benchmark(codec)
    assert decoded.payload == packet.payload


def test_crc32_throughput(benchmark):
    """From-scratch CRC-32 over a 4 KiB buffer."""
    data = bytes(range(256)) * 16

    def compute():
        return crc32(data)

    import zlib

    assert benchmark(compute) == zlib.crc32(data)


def test_mcmf_placement_speed(benchmark):
    """Algorithm 1 at paper scale: 64 threads x 16 DIMMs (paper: ~2 ms)."""
    rng = np.random.default_rng(42)
    traffic = rng.integers(0, 1 << 20, size=(64, 16)).astype(float)
    config = SystemConfig.named("16D-8C")

    placement = benchmark(distance_aware_placement, traffic, config)
    assert len(placement) == 64
    assert max(placement.count(d) for d in range(16)) <= 4


def test_end_to_end_kernel_rate(benchmark):
    """Whole-stack simulation speed: one tiny PageRank on DIMM-Link."""
    from repro.experiments.common import build_workload, run_nmp

    workload = build_workload("pagerank", "tiny")

    def drive():
        return run_nmp(SystemConfig.named("8D-4C"), workload, "dimm_link").time_ps

    assert benchmark(drive) > 0
