"""Benchmark: regenerate Fig. 14 (synchronization sensitivity)."""

from repro.experiments import fig14_sync


def test_fig14_interval_sweep(once):
    rows = once(fig14_sync.run_intervals, intervals=(500, 2000), barriers=5)
    for row in rows:
        assert row["DL-Hier"] <= row["MCN"]
    tight = fig14_sync.speedups_at(rows, 500)
    assert tight["MCN"] > 1.0


def test_fig14_tspow(once):
    results = once(fig14_sync.run_tspow, size="tiny")
    assert results["DL-Hier"] < results["MCN"]
