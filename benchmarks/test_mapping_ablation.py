"""Benchmark: the distance-aware mapping ablation."""

from repro.experiments import mapping_ablation


def test_mapping_recovery(once):
    results = once(mapping_ablation.run, size="tiny", workload_names=("pagerank",))
    assert results["pagerank"]["speedup"] > 1.2
