"""Benchmark: regenerate Fig. 15 (polling strategies)."""

from repro.experiments import fig15_polling


def test_fig15_polling(once):
    rows = once(fig15_polling.run, size="tiny", workload_names=("pagerank",))
    stats = fig15_polling.summary(rows)
    assert stats["baseline"]["mean_bus_occupancy"] > stats["proxy"]["mean_bus_occupancy"]
    assert stats["proxy"]["time_geomean_us"] <= min(
        s["time_geomean_us"] for s in stats.values()
    ) * 1.001
