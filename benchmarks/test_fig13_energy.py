"""Benchmark: regenerate Fig. 13 (energy comparison)."""

from repro.experiments import fig13_energy


def test_fig13_energy(once):
    rows = once(fig13_energy.run, size="tiny", workload_names=("pagerank", "hotspot"))
    stats = fig13_energy.summary(rows)
    assert stats["mcn_over_dl_energy"] > 1.0       # paper: 1.76x
    assert stats["aim_has_lowest_idc_energy"] == 1.0
