"""Benchmark: regenerate Fig. 17 (topology exploration)."""

from repro.experiments import fig17_topology


def test_fig17_topologies(once):
    rows = once(fig17_topology.run, size="tiny", workload_names=("pagerank",))
    gains = fig17_topology.speedups_over_half_ring(rows)
    assert set(gains) == {"half_ring", "ring", "mesh", "torus"}
    assert gains["torus"] >= 0.98
