"""Benchmark: regenerate Fig. 12 (broadcast comparison)."""

from repro.experiments import fig12_broadcast


def test_fig12_broadcast(once):
    rows = once(
        fig12_broadcast.run,
        size="tiny",
        dpc_configs=(("2DPC", "16D-8C"),),
        workload_names=("spmv_bc", "pagerank_bc"),
    )
    stats = fig12_broadcast.summary(rows)
    assert stats["dl_over_mcn_bc"] > 1.0
    assert stats["dl_over_abc"] > 1.0
    assert stats["aim_over_dl"] > 1.0
