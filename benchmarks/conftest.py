"""Shared benchmark helpers.

These benchmarks are macro-benchmarks: each regenerates one paper
table/figure at the ``tiny`` size preset.  They run one round (the
simulations are deterministic, so repetition only measures Python noise)
and assert the figure's qualitative shape on the produced rows.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
