"""Benchmark: regenerate Fig. 11 (DL-opt traffic breakdown)."""

from repro.experiments import fig11_breakdown


def test_fig11_breakdown(once):
    rows = once(fig11_breakdown.run, size="tiny", workload_names=("pagerank", "hotspot"))
    for row in rows:
        assert abs(
            row["local_share"] + row["intra_group_share"] + row["forwarded_share"] - 1.0
        ) < 1e-9
    # a minority of IDC traffic crosses the host (paper: ~29%)
    assert fig11_breakdown.mean_forwarded_fraction(rows) < 0.5
